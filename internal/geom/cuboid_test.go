package geom

import "testing"

func TestCuboidOf(t *testing.T) {
	t.Parallel()
	c := CuboidOf(R(0, 0, 2, 3), 0.5, 1.5)
	if c.Z0 != 0.5 || c.Z1 != 2.0 {
		t.Errorf("z = [%v,%v]", c.Z0, c.Z1)
	}
	if c.Height() != 1.5 {
		t.Errorf("Height = %v", c.Height())
	}
	if !close(c.Volume(), 9, eps) {
		t.Errorf("Volume = %v", c.Volume())
	}
}

func TestCuboidOverlapZOffset(t *testing.T) {
	t.Parallel()
	// A keepout hovering above a low component must not collide — this is
	// the paper's "3D keepouts with z-offset" feature.
	component := CuboidOf(R(0, 0, 1, 1), 0, 1)
	hover := CuboidOf(R(0, 0, 1, 1), 2, 1)
	if component.Overlaps(hover) {
		t.Error("hovering keepout must not overlap low component")
	}
	touching := CuboidOf(R(0, 0, 1, 1), 1, 1) // z intervals touch at 1
	if component.Overlaps(touching) {
		t.Error("z-touching cuboids must not overlap")
	}
	intersecting := CuboidOf(R(0.5, 0.5, 2, 2), 0.5, 1)
	if !component.Overlaps(intersecting) {
		t.Error("interpenetrating cuboids must overlap")
	}
	// Same z-range, disjoint footprints.
	aside := CuboidOf(R(5, 5, 6, 6), 0, 1)
	if component.Overlaps(aside) {
		t.Error("disjoint footprints must not overlap")
	}
}

func TestCuboidContains(t *testing.T) {
	t.Parallel()
	c := CuboidOf(R(0, 0, 2, 2), 1, 1)
	if !c.Contains(V3(1, 1, 1.5)) {
		t.Error("interior point")
	}
	if !c.Contains(V3(0, 0, 1)) {
		t.Error("corner point (boundary inclusive)")
	}
	if c.Contains(V3(1, 1, 0.5)) {
		t.Error("below z-offset")
	}
	if c.Contains(V3(3, 1, 1.5)) {
		t.Error("outside footprint")
	}
}

func TestCuboidTranslate(t *testing.T) {
	t.Parallel()
	c := CuboidOf(R(0, 0, 1, 1), 0, 2).Translate(V2(3, 4))
	if c.Base != R(3, 4, 4, 5) {
		t.Errorf("Translate base = %v", c.Base)
	}
	if c.Z0 != 0 || c.Z1 != 2 {
		t.Error("Translate must not change z")
	}
}
