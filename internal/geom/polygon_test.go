package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func lShape() Polygon {
	// L-shaped board outline, a typical "arbitrary shaped placement area".
	return Polygon{
		{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4},
	}
}

func TestPolygonArea(t *testing.T) {
	t.Parallel()
	if a := lShape().Area(); !close(a, 12, eps) {
		t.Errorf("L area = %v", a)
	}
	sq := RectPolygon(R(0, 0, 3, 3))
	if a := sq.Area(); !close(a, 9, eps) {
		t.Errorf("square area = %v", a)
	}
	if a := (Polygon{{0, 0}, {1, 1}}).Area(); a != 0 {
		t.Errorf("degenerate area = %v", a)
	}
}

func TestPolygonContains(t *testing.T) {
	t.Parallel()
	p := lShape()
	in := []Vec2{{1, 1}, {3, 1}, {1, 3}, {0.01, 0.01}}
	out := []Vec2{{3, 3}, {5, 1}, {-1, 0}, {2.5, 2.5}}
	for _, pt := range in {
		if !p.Contains(pt) {
			t.Errorf("should contain %v", pt)
		}
	}
	for _, pt := range out {
		if p.Contains(pt) {
			t.Errorf("should not contain %v", pt)
		}
	}
	// Boundary points count as inside.
	for _, pt := range []Vec2{{0, 0}, {2, 3}, {4, 1}, {1, 0}} {
		if !p.Contains(pt) {
			t.Errorf("boundary point %v should be inside", pt)
		}
	}
}

func TestPolygonContainsRect(t *testing.T) {
	t.Parallel()
	p := lShape()
	if !p.ContainsRect(R(0.5, 0.5, 1.5, 1.5)) {
		t.Error("rect in lower arm should fit")
	}
	if !p.ContainsRect(R(0.5, 2.5, 1.5, 3.5)) {
		t.Error("rect in upper arm should fit")
	}
	// Rect spanning the notch: all 4 corners inside, but crosses the
	// re-entrant corner region.
	if p.ContainsRect(R(1, 1, 3, 3)) {
		t.Error("rect across the L notch must not fit")
	}
	if p.ContainsRect(R(3, 3, 3.5, 3.5)) {
		t.Error("rect fully in the notch must not fit")
	}
	// Exactly fills the lower arm (boundary inclusive).
	if !p.ContainsRect(R(0, 0, 4, 2)) {
		t.Error("exact lower arm should fit")
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	t.Parallel()
	p := lShape()
	if !p.IntersectsRect(R(3, 1, 5, 3)) {
		t.Error("partially overlapping rect should intersect")
	}
	if p.IntersectsRect(R(3, 3, 4, 4)) {
		t.Error("rect in the notch should not intersect")
	}
	if !p.IntersectsRect(R(-1, -1, 5, 5)) {
		t.Error("enclosing rect should intersect")
	}
	if p.IntersectsRect(R(10, 10, 11, 11)) {
		t.Error("far rect should not intersect")
	}
}

func TestPolygonBBoxCentroid(t *testing.T) {
	t.Parallel()
	p := lShape()
	if bb := p.BBox(); bb != R(0, 0, 4, 4) {
		t.Errorf("BBox = %v", bb)
	}
	sq := RectPolygon(R(2, 2, 6, 4))
	c := sq.Centroid()
	if !close(c.X, 4, eps) || !close(c.Y, 3, eps) {
		t.Errorf("centroid = %v", c)
	}
	if (Polygon{}).Centroid() != V2(0, 0) {
		t.Error("empty centroid")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b, c, d Vec2
		want       bool
	}{
		{V2(0, 0), V2(2, 2), V2(0, 2), V2(2, 0), true},  // X cross
		{V2(0, 0), V2(1, 0), V2(2, 0), V2(3, 0), false}, // collinear disjoint
		{V2(0, 0), V2(2, 0), V2(1, 0), V2(3, 0), true},  // collinear overlap
		{V2(0, 0), V2(1, 1), V2(1, 1), V2(2, 0), true},  // shared endpoint
		{V2(0, 0), V2(1, 0), V2(0, 1), V2(1, 1), false}, // parallel
		{V2(0, 0), V2(2, 0), V2(1, 0), V2(1, 1), true},  // T touch
		{V2(0, 0), V2(2, 0), V2(1, 0.1), V2(1, 1), false},
	}
	for i, c := range cases {
		if got := segmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestSegmentsCrossStrictly(t *testing.T) {
	t.Parallel()
	if !segmentsCrossStrictly(V2(0, 0), V2(2, 2), V2(0, 2), V2(2, 0)) {
		t.Error("X cross should cross strictly")
	}
	if segmentsCrossStrictly(V2(0, 0), V2(2, 0), V2(1, 0), V2(1, 1)) {
		t.Error("T touch must not cross strictly")
	}
	if segmentsCrossStrictly(V2(0, 0), V2(1, 1), V2(1, 1), V2(2, 0)) {
		t.Error("shared endpoint must not cross strictly")
	}
}

func TestPolygonRectAgreement(t *testing.T) {
	t.Parallel()
	// For a rectangle-as-polygon, ContainsRect must agree with Rect.ContainsRect.
	outer := R(0, 0, 10, 10)
	poly := RectPolygon(outer)
	cases := []Rect{
		R(1, 1, 2, 2), R(0, 0, 10, 10), R(-1, 1, 2, 2), R(9, 9, 11, 11),
	}
	for _, r := range cases {
		if poly.ContainsRect(r) != outer.ContainsRect(r) {
			t.Errorf("disagreement for %v", r)
		}
	}
}

func TestPolygonContainsMatchesBBoxForConvex(t *testing.T) {
	t.Parallel()
	sq := RectPolygon(R(0, 0, 5, 5))
	f := func(x, y float64) bool {
		x, y = math.Mod(x, 10), math.Mod(y, 10)
		return sq.Contains(V2(x, y)) == sq.BBox().Contains(V2(x, y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
