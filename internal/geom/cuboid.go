package geom

// Cuboid is an axis-aligned box used for the 3D aspects of placement:
// component bodies and "3D keepouts with/without z-offset" from the paper.
type Cuboid struct {
	Base Rect    // footprint on the board plane
	Z0   float64 // bottom height above the board surface (the z-offset)
	Z1   float64 // top height
}

// CuboidOf builds a cuboid from a footprint, z-offset and height.
func CuboidOf(base Rect, zOffset, height float64) Cuboid {
	return Cuboid{Base: base, Z0: zOffset, Z1: zOffset + height}
}

// Height returns the vertical extent of c.
func (c Cuboid) Height() float64 { return c.Z1 - c.Z0 }

// Volume returns the volume of c.
func (c Cuboid) Volume() float64 { return c.Base.Area() * c.Height() }

// Overlaps reports whether c and d share interior volume. Two cuboids whose
// z intervals merely touch (e.g. a keepout hovering exactly at a component's
// top face) do not overlap — this is what allows routing a keepout *above*
// low components, per the paper's z-offset keepouts.
func (c Cuboid) Overlaps(d Cuboid) bool {
	return c.Base.Overlaps(d.Base) && c.Z0 < d.Z1 && d.Z0 < c.Z1
}

// Contains reports whether point p lies inside c (boundary inclusive).
func (c Cuboid) Contains(p Vec3) bool {
	return c.Base.Contains(p.XY()) && p.Z >= c.Z0 && p.Z <= c.Z1
}

// Translate shifts the cuboid footprint by d in the plane.
func (c Cuboid) Translate(d Vec2) Cuboid {
	c.Base = c.Base.Translate(d)
	return c
}
