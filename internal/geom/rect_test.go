package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNormalizes(t *testing.T) {
	t.Parallel()
	r := R(3, 4, 1, 2)
	if r.Min != V2(1, 2) || r.Max != V2(3, 4) {
		t.Errorf("R did not normalize: %+v", r)
	}
}

func TestRectBasics(t *testing.T) {
	t.Parallel()
	r := R(0, 0, 2, 4)
	if r.W() != 2 || r.H() != 4 || r.Area() != 8 {
		t.Errorf("W/H/Area = %v %v %v", r.W(), r.H(), r.Area())
	}
	if r.Center() != V2(1, 2) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !(Rect{}).Empty() {
		t.Error("zero rect not empty")
	}
}

func TestRectContains(t *testing.T) {
	t.Parallel()
	r := R(0, 0, 1, 1)
	for _, p := range []Vec2{{0, 0}, {1, 1}, {0.5, 0.5}, {1, 0}} {
		if !r.Contains(p) {
			t.Errorf("should contain %v", p)
		}
	}
	for _, p := range []Vec2{{-0.1, 0}, {1.1, 1}, {0.5, 2}} {
		if r.Contains(p) {
			t.Errorf("should not contain %v", p)
		}
	}
}

func TestRectOverlapTouchingEdges(t *testing.T) {
	t.Parallel()
	a := R(0, 0, 1, 1)
	b := R(1, 0, 2, 1) // shares an edge
	if a.Overlaps(b) {
		t.Error("edge-touching rects must not overlap")
	}
	c := R(0.99, 0, 2, 1)
	if !a.Overlaps(c) {
		t.Error("interior-sharing rects must overlap")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	t.Parallel()
	a := R(0, 0, 2, 2)
	b := R(1, 1, 3, 3)
	got := a.Intersect(b)
	if got != R(1, 1, 2, 2) {
		t.Errorf("Intersect = %v", got)
	}
	if u := a.Union(b); u != R(0, 0, 3, 3) {
		t.Errorf("Union = %v", u)
	}
	// Disjoint intersection is empty.
	if got := a.Intersect(R(5, 5, 6, 6)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v", got)
	}
	// Union with empty.
	if u := (Rect{}).Union(a); u != a {
		t.Errorf("Union with empty = %v", u)
	}
}

func TestRectInflate(t *testing.T) {
	t.Parallel()
	r := R(0, 0, 2, 2).Inflate(0.5)
	if r != R(-0.5, -0.5, 2.5, 2.5) {
		t.Errorf("Inflate = %v", r)
	}
	// Over-shrink collapses to center, not inverted.
	s := R(0, 0, 2, 2).Inflate(-2)
	if !s.Empty() || s.Center() != V2(1, 1) {
		t.Errorf("over-shrunk = %v", s)
	}
}

func TestRectSeparation(t *testing.T) {
	t.Parallel()
	a := R(0, 0, 1, 1)
	if d := a.Separation(R(2, 0, 3, 1)); d != 1 {
		t.Errorf("horizontal gap = %v", d)
	}
	if d := a.Separation(R(2, 2, 3, 3)); !close(d, math.Sqrt2, eps) {
		t.Errorf("diagonal gap = %v", d)
	}
	if d := a.Separation(R(0.5, 0.5, 2, 2)); d != 0 {
		t.Errorf("overlapping separation = %v", d)
	}
	if d := a.Separation(R(1, 0, 2, 1)); d != 0 {
		t.Errorf("touching separation = %v", d)
	}
}

func TestRotatedAABB(t *testing.T) {
	t.Parallel()
	// 90° rotation swaps width and height.
	r := RotatedAABB(V2(0, 0), 4, 2, math.Pi/2)
	if !close(r.W(), 2, 1e-12) || !close(r.H(), 4, 1e-12) {
		t.Errorf("90°: W=%v H=%v", r.W(), r.H())
	}
	// 0° keeps them.
	r = RotatedAABB(V2(1, 1), 4, 2, 0)
	if r != R(-1, 0, 3, 2) {
		t.Errorf("0° = %v", r)
	}
	// 45° of a square grows by √2.
	r = RotatedAABB(V2(0, 0), 2, 2, math.Pi/4)
	if !close(r.W(), 2*math.Sqrt2, 1e-12) {
		t.Errorf("45° W = %v", r.W())
	}
}

func TestRotatedAABBProperties(t *testing.T) {
	t.Parallel()
	// AABB area never smaller than the rect's own area; center preserved.
	m := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 10)
	}
	f := func(cx, cy, w, h, ang float64) bool {
		cx, cy = m(cx), m(cy)
		w, h = math.Abs(m(w)), math.Abs(m(h))
		ang = math.Mod(m(ang), 2*math.Pi)
		r := RotatedAABB(V2(cx, cy), w, h, ang)
		if r.Area() < w*h-1e-9 {
			return false
		}
		c := r.Center()
		return close(c.X, cx, 1e-9*(1+math.Abs(cx))) && close(c.Y, cy, 1e-9*(1+math.Abs(cy)))
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSeparationSymmetric(t *testing.T) {
	t.Parallel()
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		m := func(x float64) float64 { return math.Mod(x, 100) }
		a := R(m(a0), m(a1), m(a2), m(a3))
		b := R(m(b0), m(b1), m(b2), m(b3))
		return close(a.Separation(b), b.Separation(a), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
