// Package geom provides the 2D/3D geometric primitives used throughout the
// EMI design flow: vectors, rotations, rectangles, polygons and cuboids.
//
// The placement tool of the paper works on the continuous plane and
// approximates all placement-relevant objects rectilinearly by rectangles or
// cuboids; this package supplies exactly those primitives plus the 3D vector
// algebra needed by the PEEC field solver.
//
// All coordinates are in SI meters unless a name says otherwise.
package geom

import "math"

// Vec2 is a point or direction in the board plane.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{x, y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the scalar product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3D cross product of v and w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Normalize returns v/|v|, or the zero vector if |v| == 0.
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n == 0 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Rot returns v rotated by angle rad (counter-clockwise).
func (v Vec2) Rot(rad float64) Vec2 {
	s, c := math.Sincos(rad)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Vec3 is a point or direction in 3D space.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the scalar product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Normalize returns v/|v|, or the zero vector if |v| == 0.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// RotZ returns v rotated by rad around the z axis.
func (v Vec3) RotZ(rad float64) Vec3 {
	s, c := math.Sincos(rad)
	return Vec3{c*v.X - s*v.Y, s*v.X + c*v.Y, v.Z}
}

// RotAxis returns v rotated by rad around the unit axis n (Rodrigues formula).
// The axis is normalized internally; a zero axis returns v unchanged.
func (v Vec3) RotAxis(n Vec3, rad float64) Vec3 {
	n = n.Normalize()
	if n == (Vec3{}) {
		return v
	}
	s, c := math.Sincos(rad)
	return v.Scale(c).
		Add(n.Cross(v).Scale(s)).
		Add(n.Scale(n.Dot(v) * (1 - c)))
}

// XY projects v onto the board plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Lift raises a 2D point to height z.
func (v Vec2) Lift(z float64) Vec3 { return Vec3{v.X, v.Y, z} }

// AngleBetween returns the unsigned angle in [0, π] between two 3D vectors.
// If either vector is zero the result is 0.
func AngleBetween(a, b Vec3) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	c := a.Dot(b) / (na * nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// AxisAngle returns the unsigned acute angle in [0, π/2] between two axis
// directions (orientation lines rather than vectors): axes a and -a are the
// same magnetic axis, so the angle is folded into the first quadrant.
//
// This is the alpha_ij of the paper's EMD rule EMD = PEMD * cos(alpha).
func AxisAngle(a, b Vec3) float64 {
	ang := AngleBetween(a, b)
	if ang > math.Pi/2 {
		ang = math.Pi - ang
	}
	return ang
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
