package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec2Basics(t *testing.T) {
	t.Parallel()
	a, b := V2(1, 2), V2(3, -4)
	if got := a.Add(b); got != V2(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V2(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V2(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
	if got := b.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := V2(0, 3).Dist(V2(4, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestVec2Rot(t *testing.T) {
	t.Parallel()
	v := V2(1, 0).Rot(math.Pi / 2)
	if !close(v.X, 0, eps) || !close(v.Y, 1, eps) {
		t.Errorf("Rot 90° = %v", v)
	}
	v = V2(1, 1).Rot(math.Pi)
	if !close(v.X, -1, eps) || !close(v.Y, -1, eps) {
		t.Errorf("Rot 180° = %v", v)
	}
}

func TestVec2Normalize(t *testing.T) {
	t.Parallel()
	if got := V2(0, 0).Normalize(); got != V2(0, 0) {
		t.Errorf("Normalize zero = %v", got)
	}
	n := V2(3, 4).Normalize()
	if !close(n.Norm(), 1, eps) {
		t.Errorf("Normalize |v| = %v", n.Norm())
	}
}

func TestVec3Basics(t *testing.T) {
	t.Parallel()
	a, b := V3(1, 0, 0), V3(0, 1, 0)
	if got := a.Cross(b); got != V3(0, 0, 1) {
		t.Errorf("Cross = %v", got)
	}
	if got := b.Cross(a); got != V3(0, 0, -1) {
		t.Errorf("Cross reversed = %v", got)
	}
	if got := V3(1, 2, 2).Norm(); got != 3 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Dot(b); got != 0 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVec3RotZ(t *testing.T) {
	t.Parallel()
	v := V3(1, 0, 5).RotZ(math.Pi / 2)
	if !close(v.X, 0, eps) || !close(v.Y, 1, eps) || v.Z != 5 {
		t.Errorf("RotZ = %v", v)
	}
}

func TestVec3RotAxis(t *testing.T) {
	t.Parallel()
	// Rotating around z must match RotZ.
	v := V3(1, 2, 3)
	a := v.RotAxis(V3(0, 0, 1), 0.7)
	b := v.RotZ(0.7)
	if a.Dist(b) > 1e-12 {
		t.Errorf("RotAxis z mismatch: %v vs %v", a, b)
	}
	// Rotating x-axis around y by 90° gives -z.
	w := V3(1, 0, 0).RotAxis(V3(0, 1, 0), math.Pi/2)
	if !close(w.X, 0, eps) || !close(w.Z, -1, eps) {
		t.Errorf("RotAxis y = %v", w)
	}
	// Zero axis is identity.
	if got := v.RotAxis(V3(0, 0, 0), 1); got != v {
		t.Errorf("RotAxis zero axis = %v", got)
	}
}

func TestRotAxisPreservesNorm(t *testing.T) {
	t.Parallel()
	m := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 100)
	}
	f := func(x, y, z, ax, ay, az, ang float64) bool {
		v := V3(m(x), m(y), m(z))
		w := v.RotAxis(V3(m(ax), m(ay), m(az)), m(ang))
		return close(v.Norm(), w.Norm(), 1e-9*(1+v.Norm()))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAngleBetween(t *testing.T) {
	t.Parallel()
	if got := AngleBetween(V3(1, 0, 0), V3(0, 1, 0)); !close(got, math.Pi/2, eps) {
		t.Errorf("90° = %v", got)
	}
	if got := AngleBetween(V3(1, 0, 0), V3(-1, 0, 0)); !close(got, math.Pi, eps) {
		t.Errorf("180° = %v", got)
	}
	if got := AngleBetween(V3(0, 0, 0), V3(1, 0, 0)); got != 0 {
		t.Errorf("zero vector = %v", got)
	}
	// Numerically parallel vectors must not NaN from acos(>1).
	a := V3(1, 1, 1).Scale(1e-7)
	if got := AngleBetween(a, a); math.IsNaN(got) || !close(got, 0, 1e-6) {
		t.Errorf("parallel = %v", got)
	}
}

func TestAxisAngleFolds(t *testing.T) {
	t.Parallel()
	// Axis and its negation are the same magnetic axis.
	if got := AxisAngle(V3(1, 0, 0), V3(-1, 0, 0)); !close(got, 0, eps) {
		t.Errorf("antiparallel axes = %v", got)
	}
	if got := AxisAngle(V3(1, 0, 0), V3(0, 1, 0)); !close(got, math.Pi/2, eps) {
		t.Errorf("orthogonal axes = %v", got)
	}
	got := AxisAngle(V3(1, 0, 0), V3(-1, 1, 0)) // 135° folds to 45°
	if !close(got, math.Pi/4, 1e-12) {
		t.Errorf("135° folds to %v", Deg(got))
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		return close(Rad(Deg(x)), x, 1e-9*(1+math.Abs(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLiftXY(t *testing.T) {
	t.Parallel()
	p := V2(2, 3).Lift(7)
	if p != V3(2, 3, 7) {
		t.Errorf("Lift = %v", p)
	}
	if p.XY() != V2(2, 3) {
		t.Errorf("XY = %v", p.XY())
	}
}
