package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle on the board plane.
// A valid Rect has Min.X <= Max.X and Min.Y <= Max.Y.
type Rect struct {
	Min, Max Vec2
}

// R constructs a normalized rectangle from two opposite corners.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Vec2{x0, y0}, Vec2{x1, y1}}
}

// RectAround builds the rectangle with the given center and dimensions.
func RectAround(center Vec2, w, h float64) Rect {
	return R(center.X-w/2, center.Y-h/2, center.X+w/2, center.Y+h/2)
}

// W returns the width of r.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of r.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the midpoint of r.
func (r Rect) Center() Vec2 {
	return Vec2{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Empty reports whether r has zero (or negative) area.
func (r Rect) Empty() bool { return r.W() <= 0 || r.H() <= 0 }

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Overlaps reports whether r and s share interior area.
// Rectangles that merely touch at an edge or corner do not overlap.
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Intersect returns the intersection of r and s; the result may be Empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Vec2{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Vec2{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Min.X > out.Max.X || out.Min.Y > out.Max.Y {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Vec2{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Vec2{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Inflate grows r by d on every side (shrinks for d < 0). The result is
// normalized, so over-shrinking collapses to a degenerate rectangle at the
// center rather than an inverted one.
func (r Rect) Inflate(d float64) Rect {
	out := Rect{
		Vec2{r.Min.X - d, r.Min.Y - d},
		Vec2{r.Max.X + d, r.Max.Y + d},
	}
	c := r.Center()
	if out.Min.X > out.Max.X {
		out.Min.X, out.Max.X = c.X, c.X
	}
	if out.Min.Y > out.Max.Y {
		out.Min.Y, out.Max.Y = c.Y, c.Y
	}
	return out
}

// Translate shifts r by d.
func (r Rect) Translate(d Vec2) Rect {
	return Rect{r.Min.Add(d), r.Max.Add(d)}
}

// Corners returns the four corners of r in counter-clockwise order starting
// at Min.
func (r Rect) Corners() [4]Vec2 {
	return [4]Vec2{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Separation returns the minimum Euclidean distance between the boundaries of
// r and s, or 0 if they touch or overlap. This is the clearance metric used
// by the design-rule checker.
func (r Rect) Separation(s Rect) float64 {
	dx := math.Max(0, math.Max(s.Min.X-r.Max.X, r.Min.X-s.Max.X))
	dy := math.Max(0, math.Max(s.Min.Y-r.Max.Y, r.Min.Y-s.Max.Y))
	return math.Hypot(dx, dy)
}

// RotatedAABB returns the axis-aligned bounding box of a w×h rectangle
// centered at center after rotation by rad. This implements the paper's
// rectilinear approximation of rotated components.
func RotatedAABB(center Vec2, w, h, rad float64) Rect {
	s, c := math.Sincos(rad)
	hw := (math.Abs(c)*w + math.Abs(s)*h) / 2
	hh := (math.Abs(s)*w + math.Abs(c)*h) / 2
	return R(center.X-hw, center.Y-hh, center.X+hw, center.Y+hh)
}

// String implements fmt.Stringer with millimeter output for readability.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f → %.2f,%.2f]mm",
		r.Min.X*1e3, r.Min.Y*1e3, r.Max.X*1e3, r.Max.Y*1e3)
}
