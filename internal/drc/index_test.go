package drc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// violationsMentioning filters a report's violations to those whose refs
// include the given component.
func violationsMentioning(r *Report, ref string) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		for _, vr := range v.Refs {
			if vr == ref {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// TestCheckMoveMatchesFullCheck is the regression contract of the scoped
// probe: for a randomly placed synthetic workload, the violations a
// CheckMove probe reports about the probed component must be exactly the
// violations a full Check of the mutated design reports about it, and the
// probe's pair statuses must match the full check's statuses for the
// component's rules.
func TestCheckMoveMatchesFullCheck(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	d := workload.Synthetic(20, 60, 3, 0.16, 0.12)
	for _, c := range d.Comps {
		c.Placed = true
		c.Center = geom.V2(0.01+rng.Float64()*0.14, 0.01+rng.Float64()*0.10)
	}
	idx := NewIndex(d)
	for trial := 0; trial < 40; trial++ {
		c := d.Comps[rng.Intn(len(d.Comps))]
		center := geom.V2(0.01+rng.Float64()*0.14, 0.01+rng.Float64()*0.10)
		rot := float64(rng.Intn(4)) * geom.Rad(90)

		scoped, err := idx.CheckMove(c.Ref, center, rot)
		if err != nil {
			t.Fatal(err)
		}

		// Apply the move for real and run the full check.
		saved := *c
		c.Center, c.Rot, c.Placed = center, rot, true
		idx.Update(c.Ref)
		full := Check(d)

		wantViols := violationsMentioning(full, c.Ref)
		gotViols := violationsMentioning(scoped, c.Ref)
		sortViolations(wantViols)
		sortViolations(gotViols)
		if !reflect.DeepEqual(gotViols, wantViols) {
			t.Fatalf("trial %d: scoped violations about %s diverge\nscoped: %v\nfull:   %v",
				trial, c.Ref, gotViols, wantViols)
		}

		// Pair statuses for the probed component's rules must agree.
		var wantPairs []PairStatus
		for _, p := range full.Pairs {
			if p.RefA == c.Ref || p.RefB == c.Ref {
				wantPairs = append(wantPairs, p)
			}
		}
		gotPairs := append([]PairStatus(nil), scoped.Pairs...)
		sortPairs(wantPairs)
		sortPairs(gotPairs)
		if !reflect.DeepEqual(gotPairs, wantPairs) {
			t.Fatalf("trial %d: scoped pairs diverge\nscoped: %v\nfull:   %v", trial, gotPairs, wantPairs)
		}

		// Every scoped violation must appear in the full report too (the
		// probe covers units beyond those naming the component, e.g. its
		// whole group).
		fullKeys := map[string]bool{}
		for _, v := range full.Violations {
			fullKeys[violKey(v)] = true
		}
		for _, v := range scoped.Violations {
			if !fullKeys[violKey(v)] {
				t.Fatalf("trial %d: scoped reported %v which the full check does not", trial, v)
			}
		}

		// Restore for the next trial.
		*c = saved
		idx.Update(c.Ref)
	}
}

// TestCheckMoveGreenImpliesDesignGreen pins the invariant the placers rely
// on: starting from a green design, a green scoped probe means the design
// stays green after the move.
func TestCheckMoveGreenImpliesDesignGreen(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	d := workload.Synthetic(16, 40, 2, 0.2, 0.16)
	// Spread the components out until the design is green.
	cols := 4
	for i, c := range d.Comps {
		c.Placed = true
		c.Center = geom.V2(0.03+float64(i%cols)*0.045, 0.025+float64(i/cols)*0.038)
	}
	if r := Check(d); !r.Green() {
		t.Skipf("seed layout not green: %s", r)
	}
	idx := NewIndex(d)
	moves := 0
	for trial := 0; trial < 200 && moves < 20; trial++ {
		c := d.Comps[rng.Intn(len(d.Comps))]
		center := geom.V2(0.015+rng.Float64()*0.17, 0.015+rng.Float64()*0.13)
		rep, err := idx.CheckMove(c.Ref, center, c.Rot)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Green() {
			continue
		}
		c.Center = center
		idx.Update(c.Ref)
		moves++
		if full := Check(d); !full.Green() {
			t.Fatalf("scoped probe was green but the design is not after moving %s:\n%s", c.Ref, full)
		}
	}
	if moves == 0 {
		t.Fatal("no green moves found; test exercised nothing")
	}
}

// TestIndexCheckComponentDeterministic guards the sort contracts: two
// identical probes must return identical reports.
func TestIndexCheckComponentDeterministic(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	d := workload.Synthetic(18, 50, 3, 0.14, 0.1)
	for _, c := range d.Comps {
		c.Placed = true
		c.Center = geom.V2(0.01+rng.Float64()*0.12, 0.01+rng.Float64()*0.08)
	}
	idx := NewIndex(d)
	refs := make([]string, len(d.Comps))
	for i, c := range d.Comps {
		refs[i] = c.Ref
	}
	sort.Strings(refs)
	for _, ref := range refs {
		a, err := idx.CheckComponent(ref)
		if err != nil {
			t.Fatal(err)
		}
		b, err := idx.CheckComponent(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("CheckComponent(%s) not deterministic:\n%v\n%v", ref, a, b)
		}
	}
}
