package drc

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/rules"
	"repro/internal/workload"
)

// mutate applies one random design mutation and returns the matching
// invalidation scope.
func mutate(rng *rand.Rand, d *layout.Design) Scope {
	switch rng.Intn(6) {
	case 0, 1, 2: // move
		c := d.Comps[rng.Intn(len(d.Comps))]
		c.Placed = true
		c.Center = geom.V2(0.005+rng.Float64()*0.15, 0.005+rng.Float64()*0.11)
		c.Rot = float64(rng.Intn(4)) * geom.Rad(90)
		return Scope{Refs: []string{c.Ref}}
	case 3: // swap board
		c := d.Comps[rng.Intn(len(d.Comps))]
		if !c.Placed {
			c.Placed = true
		}
		c.Board = rng.Intn(d.Boards)
		return Scope{Refs: []string{c.Ref}}
	case 4: // add or tighten a rule
		a := d.Comps[rng.Intn(len(d.Comps))]
		b := d.Comps[rng.Intn(len(d.Comps))]
		if a == b {
			return Scope{}
		}
		d.Rules.Add(rules.Rule{RefA: a.Ref, RefB: b.Ref, PEMD: 0.005 + rng.Float64()*0.04})
		return Scope{RulesChanged: true}
	default: // clearance tweak
		d.Clearance = 0.5e-3 + rng.Float64()*2.5e-3
		return Scope{AllClearance: true}
	}
}

// TestIncrementalMatchesFullCheck drives a random edit sequence through
// Incremental.Recheck and demands the reassembled report equal a
// from-scratch Check after every single step.
func TestIncrementalMatchesFullCheck(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	d := workload.Synthetic(22, 70, 3, 0.16, 0.12)
	d.Boards = 2
	// Give one net a length budget so the net unit is exercised.
	if len(d.Nets) > 0 {
		d.Nets[0].MaxLength = 0.04
	}
	for _, c := range d.Comps {
		if rng.Intn(4) > 0 { // leave some unplaced
			c.Placed = true
			c.Center = geom.V2(0.005+rng.Float64()*0.15, 0.005+rng.Float64()*0.11)
			c.Board = rng.Intn(2)
		}
	}
	inc := NewIncremental(NewIndex(d))
	if got, want := inc.Report(), Check(d); !reflect.DeepEqual(got, want) {
		t.Fatalf("initial report diverges:\n%s\nvs\n%s", got, want)
	}
	for step := 0; step < 120; step++ {
		sc := mutate(rng, d)
		delta := inc.Recheck(sc)
		got, want := inc.Report(), Check(d)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d (scope %+v): incremental report diverges\nincremental:\n%s\nfull:\n%s",
				step, sc, got, want)
		}
		if delta.Evals > want.Checks {
			t.Fatalf("step %d: incremental evaluated %d units, more than the %d full checks",
				step, delta.Evals, want.Checks)
		}
	}
}

// TestIncrementalDeltaConsistency verifies the diff bookkeeping: replaying
// added/resolved keys against the previous violation set must reproduce
// the next one.
func TestIncrementalDeltaConsistency(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	d := workload.Synthetic(14, 30, 2, 0.12, 0.1)
	for _, c := range d.Comps {
		c.Placed = true
		c.Center = geom.V2(0.005+rng.Float64()*0.11, 0.005+rng.Float64()*0.09)
	}
	inc := NewIncremental(NewIndex(d))
	have := map[string]bool{}
	for _, v := range inc.Report().Violations {
		have[violKey(v)] = true
	}
	for step := 0; step < 80; step++ {
		sc := mutate(rng, d)
		delta := inc.Recheck(sc)
		for _, v := range delta.Added {
			k := violKey(v)
			if have[k] {
				t.Fatalf("step %d: %v reported added but already present", step, v)
			}
			have[k] = true
		}
		for _, v := range delta.Resolved {
			k := violKey(v)
			if !have[k] {
				t.Fatalf("step %d: %v reported resolved but was not present", step, v)
			}
			delete(have, k)
		}
		for _, v := range delta.Updated {
			if !have[violKey(v)] {
				t.Fatalf("step %d: %v reported updated but not present", step, v)
			}
		}
		want := map[string]bool{}
		for _, v := range inc.Report().Violations {
			want[violKey(v)] = true
		}
		if !reflect.DeepEqual(have, want) {
			t.Fatalf("step %d: replayed violation set diverges: %v vs %v", step, have, want)
		}
	}
}
