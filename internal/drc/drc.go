// Package drc implements the design-rule checks of the placement tool:
// pairwise effective-minimum-distance (EMD) rules, clearances, placement-
// area containment, 3D keepout collisions, functional-group coherence and
// net-length limits. The interactive adviser runs these checks online
// after every move; the paper visualises the EMD results as red (violated)
// or green (met) circles — PairStatus carries exactly that.
package drc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/layout"
)

// Kind classifies a violation.
type Kind string

// Violation kinds.
const (
	KindUnplaced    Kind = "unplaced"
	KindEMD         Kind = "emd"
	KindClearance   Kind = "clearance"
	KindContainment Kind = "containment"
	KindKeepout     Kind = "keepout"
	KindGroup       Kind = "group"
	KindNetLength   Kind = "netlength"
)

// Violation is one broken design rule.
type Violation struct {
	Kind   Kind
	Refs   []string // involved references (components, nets, keepouts)
	Detail string
	Amount float64 // violation magnitude in meters (0 if not applicable)
}

// PairStatus is the evaluation of one minimum-distance rule — one circle in
// the paper's visualisation.
type PairStatus struct {
	RefA, RefB string
	Required   float64 // EMD at current rotations
	Actual     float64 // center-to-center distance
	OK         bool
}

// Report is the result of a DRC run.
type Report struct {
	Violations []Violation
	Pairs      []PairStatus // every EMD rule, met or not
	Checks     int          // number of individual checks performed
}

// Green reports whether the design is free of violations.
func (r *Report) Green() bool { return len(r.Violations) == 0 }

// ByKind filters the violations.
func (r *Report) ByKind(k Kind) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

// String renders the report with the red/green markers of the paper's GUI.
func (r *Report) String() string {
	var b strings.Builder
	if r.Green() {
		fmt.Fprintf(&b, "GREEN: all %d checks passed\n", r.Checks)
	} else {
		fmt.Fprintf(&b, "RED: %d violation(s) in %d checks\n", len(r.Violations), r.Checks)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  [RED] %-11s %-12s %s\n", v.Kind, strings.Join(v.Refs, ","), v.Detail)
		}
	}
	for _, p := range r.Pairs {
		mark := "[GREEN]"
		if !p.OK {
			mark = "[RED]"
		}
		fmt.Fprintf(&b, "  %s EMD %s-%s need %.1f mm have %.1f mm\n",
			mark, p.RefA, p.RefB, p.Required*1e3, p.Actual*1e3)
	}
	return b.String()
}

// Check runs the full rule set on the design.
func Check(d *layout.Design) *Report {
	r := &Report{}
	checkPlaced(d, r)
	checkEMD(d, r)
	checkClearance(d, r)
	checkContainment(d, r)
	checkKeepouts(d, r)
	checkGroups(d, r)
	checkNets(d, r)
	return r
}

// CheckMove evaluates a hypothetical placement of one component without
// mutating the design — the adviser's online check during interactive
// movement/rotation.
func CheckMove(d *layout.Design, ref string, center geom.Vec2, rot float64) (*Report, error) {
	c := d.Find(ref)
	if c == nil {
		return nil, fmt.Errorf("drc: unknown component %q", ref)
	}
	saved := *c
	c.Center, c.Rot, c.Placed = center, rot, true
	rep := Check(d)
	*c = saved
	return rep, nil
}

func checkPlaced(d *layout.Design, r *Report) {
	for _, c := range d.Comps {
		r.Checks++
		if !c.Placed {
			r.Violations = append(r.Violations, Violation{
				Kind: KindUnplaced, Refs: []string{c.Ref},
				Detail: "component has no placement",
			})
		}
	}
}

func checkEMD(d *layout.Design, r *Report) {
	if d.Rules == nil {
		return
	}
	for _, rule := range d.Rules.Rules {
		a, b := d.Find(rule.RefA), d.Find(rule.RefB)
		if a == nil || b == nil || !a.Placed || !b.Placed {
			continue
		}
		r.Checks++
		if a.Board != b.Board {
			// Different boards decouple by construction.
			r.Pairs = append(r.Pairs, PairStatus{RefA: a.Ref, RefB: b.Ref, OK: true})
			continue
		}
		need := d.EMDBetween(a, b, a.Rot, b.Rot)
		have := a.Center.Dist(b.Center)
		ok := have >= need-1e-9
		r.Pairs = append(r.Pairs, PairStatus{
			RefA: a.Ref, RefB: b.Ref, Required: need, Actual: have, OK: ok,
		})
		if !ok {
			r.Violations = append(r.Violations, Violation{
				Kind: KindEMD, Refs: []string{a.Ref, b.Ref},
				Detail: fmt.Sprintf("distance %.1f mm below EMD %.1f mm", have*1e3, need*1e3),
				Amount: need - have,
			})
		}
	}
	sort.Slice(r.Pairs, func(i, j int) bool {
		if r.Pairs[i].RefA != r.Pairs[j].RefA {
			return r.Pairs[i].RefA < r.Pairs[j].RefA
		}
		return r.Pairs[i].RefB < r.Pairs[j].RefB
	})
}

func checkClearance(d *layout.Design, r *Report) {
	for i, a := range d.Comps {
		if !a.Placed {
			continue
		}
		for _, b := range d.Comps[i+1:] {
			if !b.Placed || a.Board != b.Board {
				continue
			}
			r.Checks++
			sep := a.Footprint().Separation(b.Footprint())
			overlap := a.Footprint().Overlaps(b.Footprint())
			if overlap || sep < d.Clearance-1e-9 {
				detail := fmt.Sprintf("separation %.2f mm below clearance %.2f mm", sep*1e3, d.Clearance*1e3)
				if overlap {
					detail = "footprints overlap"
				}
				r.Violations = append(r.Violations, Violation{
					Kind: KindClearance, Refs: []string{a.Ref, b.Ref},
					Detail: detail,
					Amount: d.Clearance - sep,
				})
			}
		}
	}
}

func checkContainment(d *layout.Design, r *Report) {
	for _, c := range d.Comps {
		if !c.Placed {
			continue
		}
		r.Checks++
		ok := false
		fp := c.Footprint().Inflate(d.EdgeClearance)
		for _, a := range d.AreasOf(c.Board, c.AreaName) {
			if a.Poly.ContainsRect(fp) {
				ok = true
				break
			}
		}
		if !ok {
			where := "any placement area"
			if c.AreaName != "" {
				where = fmt.Sprintf("area %q", c.AreaName)
			}
			r.Violations = append(r.Violations, Violation{
				Kind: KindContainment, Refs: []string{c.Ref},
				Detail: "footprint not inside " + where,
			})
		}
	}
}

func checkKeepouts(d *layout.Design, r *Report) {
	for _, c := range d.Comps {
		if !c.Placed {
			continue
		}
		body := c.Body()
		for _, k := range d.Keepouts {
			if k.Board != c.Board {
				continue
			}
			r.Checks++
			if body.Overlaps(k.Box) {
				r.Violations = append(r.Violations, Violation{
					Kind: KindKeepout, Refs: []string{c.Ref, k.Name},
					Detail: fmt.Sprintf("body intersects keepout %q", k.Name),
				})
			}
		}
	}
}

// checkGroups enforces coherent functional-group areas: the bounding box of
// a group must not contain the center of any foreign placed component on
// the same board.
func checkGroups(d *layout.Design, r *Report) {
	groups := d.Groups()
	for _, name := range d.GroupNames() {
		members := groups[name]
		perBoard := map[int]geom.Rect{}
		placed := map[int]bool{}
		for _, m := range members {
			if !m.Placed {
				continue
			}
			if !placed[m.Board] {
				perBoard[m.Board] = m.Footprint()
				placed[m.Board] = true
			} else {
				perBoard[m.Board] = perBoard[m.Board].Union(m.Footprint())
			}
		}
		for board, bbox := range perBoard {
			for _, c := range d.Comps {
				if !c.Placed || c.Board != board || c.Group == name {
					continue
				}
				r.Checks++
				if bbox.Contains(c.Center) {
					r.Violations = append(r.Violations, Violation{
						Kind: KindGroup, Refs: []string{c.Ref, name},
						Detail: fmt.Sprintf("%s sits inside group %q area", c.Ref, name),
					})
				}
			}
		}
	}
}

func checkNets(d *layout.Design, r *Report) {
	for _, n := range d.Nets {
		if n.MaxLength <= 0 {
			continue
		}
		r.Checks++
		if l := d.NetLength(n); l > n.MaxLength {
			r.Violations = append(r.Violations, Violation{
				Kind: KindNetLength, Refs: []string{n.Name},
				Detail: fmt.Sprintf("net length %.1f mm exceeds %.1f mm", l*1e3, n.MaxLength*1e3),
				Amount: l - n.MaxLength,
			})
		}
	}
}
