// Package drc implements the design-rule checks of the placement tool:
// pairwise effective-minimum-distance (EMD) rules, clearances, placement-
// area containment, 3D keepout collisions, functional-group coherence and
// net-length limits. The interactive adviser runs these checks online
// after every move; the paper visualises the EMD results as red (violated)
// or green (met) circles — PairStatus carries exactly that.
package drc

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Kind classifies a violation.
type Kind string

// Violation kinds.
const (
	KindUnplaced    Kind = "unplaced"
	KindEMD         Kind = "emd"
	KindClearance   Kind = "clearance"
	KindContainment Kind = "containment"
	KindKeepout     Kind = "keepout"
	KindGroup       Kind = "group"
	KindNetLength   Kind = "netlength"
)

// Violation is one broken design rule.
type Violation struct {
	Kind   Kind
	Refs   []string // involved references (components, nets, keepouts)
	Detail string
	Amount float64 // violation magnitude in meters (0 if not applicable)
}

// PairStatus is the evaluation of one minimum-distance rule — one circle in
// the paper's visualisation.
type PairStatus struct {
	RefA, RefB string
	Required   float64 // EMD at current rotations
	Actual     float64 // center-to-center distance
	OK         bool
}

// Report is the result of a DRC run.
type Report struct {
	Violations []Violation
	Pairs      []PairStatus // every EMD rule, met or not
	Checks     int          // number of individual checks performed
}

// Green reports whether the design is free of violations.
func (r *Report) Green() bool { return len(r.Violations) == 0 }

// ByKind filters the violations.
func (r *Report) ByKind(k Kind) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

// String renders the report with the red/green markers of the paper's GUI.
func (r *Report) String() string {
	var b strings.Builder
	if r.Green() {
		fmt.Fprintf(&b, "GREEN: all %d checks passed\n", r.Checks)
	} else {
		fmt.Fprintf(&b, "RED: %d violation(s) in %d checks\n", len(r.Violations), r.Checks)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  [RED] %-11s %-12s %s\n", v.Kind, strings.Join(v.Refs, ","), v.Detail)
		}
	}
	for _, p := range r.Pairs {
		mark := "[GREEN]"
		if !p.OK {
			mark = "[RED]"
		}
		fmt.Fprintf(&b, "  %s EMD %s-%s need %.1f mm have %.1f mm\n",
			mark, p.RefA, p.RefB, p.Required*1e3, p.Actual*1e3)
	}
	return b.String()
}

// Check runs the full rule set on the design.
func Check(d *layout.Design) *Report {
	return CheckCtx(context.Background(), d)
}

// CheckCtx is Check with tracing: a "drc.check" span records the check and
// violation counts on a traced context.
func CheckCtx(ctx context.Context, d *layout.Design) *Report {
	defer engine.Phase("drc.check")()
	_, sp := obs.Start(ctx, "drc.check")
	r := &Report{}
	checkPlaced(d, r)
	checkEMD(d, r)
	checkClearance(d, r)
	checkContainment(d, r)
	checkKeepouts(d, r)
	checkGroups(d, r)
	checkNets(d, r)
	sp.Int("checks", int64(r.Checks))
	sp.Int("violations", int64(len(r.Violations)))
	sp.End()
	return r
}

// CheckMove evaluates a hypothetical placement of one component without
// mutating the design — the adviser's online check during interactive
// movement/rotation. The report is scoped to the rules the move can
// affect (the component's EMD rules, clearances against its geometric
// neighbours, containment, keepouts, group coherence and nets), so on a
// design that was green before the move, a green scoped report means the
// whole design stays green. Callers probing repeatedly should build one
// Index and use Index.CheckMove directly.
func CheckMove(d *layout.Design, ref string, center geom.Vec2, rot float64) (*Report, error) {
	return NewIndex(d).CheckMove(ref, center, rot)
}

func checkPlaced(d *layout.Design, r *Report) {
	for _, c := range d.Comps {
		r.Checks++
		if !c.Placed {
			r.Violations = append(r.Violations, Violation{
				Kind: KindUnplaced, Refs: []string{c.Ref},
				Detail: "component has no placement",
			})
		}
	}
}

func checkEMD(d *layout.Design, r *Report) {
	if d.Rules == nil {
		return
	}
	for _, rule := range d.Rules.Rules {
		ev := evalEMDRule(d, rule)
		if !ev.counted {
			continue
		}
		r.Checks++
		r.Pairs = append(r.Pairs, ev.pair)
		if ev.hasViol {
			r.Violations = append(r.Violations, ev.viol)
		}
	}
	sortPairs(r.Pairs)
}

// sortPairs orders pair statuses by (RefA, RefB) — the canonical order of
// every Report.
func sortPairs(ps []PairStatus) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RefA != ps[j].RefA {
			return ps[i].RefA < ps[j].RefA
		}
		return ps[i].RefB < ps[j].RefB
	})
}

func checkClearance(d *layout.Design, r *Report) {
	for i, a := range d.Comps {
		if !a.Placed {
			continue
		}
		for _, b := range d.Comps[i+1:] {
			if !b.Placed || a.Board != b.Board {
				continue
			}
			r.Checks++
			if v, bad := evalClearancePair(d, a, b); bad {
				r.Violations = append(r.Violations, v)
			}
		}
	}
}

func checkContainment(d *layout.Design, r *Report) {
	for _, c := range d.Comps {
		if !c.Placed {
			continue
		}
		r.Checks++
		if v, bad := evalContainment(d, c); bad {
			r.Violations = append(r.Violations, v)
		}
	}
}

func checkKeepouts(d *layout.Design, r *Report) {
	for _, c := range d.Comps {
		if !c.Placed {
			continue
		}
		n, viols := evalKeepouts(d, c)
		r.Checks += n
		r.Violations = append(r.Violations, viols...)
	}
}

// checkGroups enforces coherent functional-group areas: the bounding box of
// a group must not contain the center of any foreign placed component on
// the same board. Boards are visited in ascending order so the report is
// deterministic for groups spanning both boards.
func checkGroups(d *layout.Design, r *Report) {
	groups := d.Groups()
	for _, name := range d.GroupNames() {
		members := groups[name]
		for board := 0; board < d.Boards; board++ {
			bbox, active := groupBBoxOn(members, board)
			if !active {
				continue
			}
			for _, c := range d.Comps {
				if !c.Placed || c.Board != board || c.Group == name {
					continue
				}
				r.Checks++
				if v, bad := evalGroupMember(name, bbox, c); bad {
					r.Violations = append(r.Violations, v)
				}
			}
		}
	}
}

func checkNets(d *layout.Design, r *Report) {
	for _, n := range d.Nets {
		if n.MaxLength <= 0 {
			continue
		}
		r.Checks++
		if v, bad := evalNet(d, n); bad {
			r.Violations = append(r.Violations, v)
		}
	}
}
