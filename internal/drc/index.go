package drc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/layout"
)

// Index is the dependency index of a design: for every component it knows
// the EMD rules, nets and group it participates in, and a uniform spatial
// grid per board answers "which components can a move at this position
// interact with" without scanning all O(n²) pairs. The adviser, the
// legalizer and the session engine all probe moves through one Index so
// they share a single scoped-check code path.
//
// An Index holds pointers into the design it was built from. It is not
// safe for concurrent use; sessions serialize access behind their own
// lock. After mutating a component's placement call Update(ref); after
// changing the rule set call RefreshRules.
type Index struct {
	d   *layout.Design
	pos map[string]int // ref -> index in d.Comps

	rulesOf map[string][]int // ref -> indices into d.Rules.Rules
	netsOf  map[string][]int // ref -> indices into d.Nets (length-limited nets only)

	groupNames []string                       // sorted, as in d.GroupNames()
	members    map[string][]*layout.Component // group -> members in comp order

	grids   []*grid // one per board
	maxHalf float64 // max half-diagonal of any footprint, meters
}

// cellKey addresses one cell of the uniform grid.
type cellKey struct{ x, y int32 }

// grid buckets placed component indices by the cell containing their
// center. Cells are sized so that any pair of components within the
// design clearance of each other is found by inspecting the cells
// overlapping a slightly inflated footprint.
type grid struct {
	cell  float64
	cells map[cellKey][]int
	at    map[int]cellKey
}

func newGrid(cell float64) *grid {
	return &grid{cell: cell, cells: map[cellKey][]int{}, at: map[int]cellKey{}}
}

func (g *grid) keyOf(p geom.Vec2) cellKey {
	return cellKey{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

func (g *grid) insert(i int, p geom.Vec2) {
	k := g.keyOf(p)
	g.cells[k] = append(g.cells[k], i)
	g.at[i] = k
}

func (g *grid) remove(i int) {
	k, ok := g.at[i]
	if !ok {
		return
	}
	delete(g.at, i)
	s := g.cells[k]
	for j, v := range s {
		if v == i {
			s[j] = s[len(s)-1]
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = s
	}
}

// appendRect appends the indices bucketed in every cell overlapping r.
func (g *grid) appendRect(r geom.Rect, out []int) []int {
	lo := g.keyOf(r.Min)
	hi := g.keyOf(r.Max)
	for x := lo.x; x <= hi.x; x++ {
		for y := lo.y; y <= hi.y; y++ {
			out = append(out, g.cells[cellKey{x, y}]...)
		}
	}
	return out
}

// NewIndex builds the dependency index for a design.
func NewIndex(d *layout.Design) *Index {
	idx := &Index{
		d:       d,
		pos:     make(map[string]int, len(d.Comps)),
		members: d.Groups(),
	}
	idx.groupNames = d.GroupNames()
	for i, c := range d.Comps {
		idx.pos[c.Ref] = i
		if h := math.Hypot(c.W, c.L) / 2; h > idx.maxHalf {
			idx.maxHalf = h
		}
	}
	// Cell side: the largest footprint diagonal plus the clearance, with a
	// 1 mm floor so degenerate designs don't produce zero-sized cells.
	// Correctness does not depend on this choice (queries inflate by the
	// live clearance), only constant factors do.
	cell := 2*idx.maxHalf + d.Clearance
	if cell < 1e-3 {
		cell = 1e-3
	}
	idx.grids = make([]*grid, d.Boards)
	for b := range idx.grids {
		idx.grids[b] = newGrid(cell)
	}
	for i, c := range d.Comps {
		if c.Placed && c.Board >= 0 && c.Board < len(idx.grids) {
			idx.grids[c.Board].insert(i, c.Center)
		}
	}
	idx.RefreshRules()
	idx.netsOf = map[string][]int{}
	for ni, n := range d.Nets {
		if n.MaxLength <= 0 {
			continue
		}
		for _, ref := range n.Refs {
			idx.netsOf[ref] = append(idx.netsOf[ref], ni)
		}
	}
	return idx
}

// Design returns the design the index was built from.
func (idx *Index) Design() *layout.Design { return idx.d }

// RefreshRules rebuilds the component → rule mapping; call it after the
// design's rule set changed.
func (idx *Index) RefreshRules() {
	idx.rulesOf = map[string][]int{}
	if idx.d.Rules == nil {
		return
	}
	for ri, r := range idx.d.Rules.Rules {
		idx.rulesOf[r.RefA] = append(idx.rulesOf[r.RefA], ri)
		if r.RefB != r.RefA {
			idx.rulesOf[r.RefB] = append(idx.rulesOf[r.RefB], ri)
		}
	}
}

// Update re-buckets one component after its placement state changed.
func (idx *Index) Update(ref string) {
	i, ok := idx.pos[ref]
	if !ok {
		return
	}
	for _, g := range idx.grids {
		g.remove(i)
	}
	c := idx.d.Comps[i]
	if c.Placed && c.Board >= 0 && c.Board < len(idx.grids) {
		idx.grids[c.Board].insert(i, c.Center)
	}
}

// neighbors returns the indices of placed components on c's board whose
// center lies within the grid cells overlapping c's footprint inflated by
// the design clearance plus the worst-case half-diagonal — a superset of
// every component within clearance range of c. The result is sorted and
// excludes c itself.
func (idx *Index) neighbors(c *layout.Component) []int {
	if !c.Placed || c.Board < 0 || c.Board >= len(idx.grids) {
		return nil
	}
	q := c.Footprint().Inflate(idx.d.Clearance + idx.maxHalf + 1e-9)
	cand := idx.grids[c.Board].appendRect(q, nil)
	self := idx.pos[c.Ref]
	out := cand[:0]
	for _, j := range cand {
		if j == self {
			continue
		}
		o := idx.d.Comps[j]
		if o.Placed && o.Board == c.Board {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// CheckComponent runs every rule the given component participates in — its
// placement, its EMD rules, clearance against geometric neighbours,
// containment, keepouts, group coherence (its own group against all
// foreigners, and itself against every foreign group) and its nets. On a
// design that is otherwise green, a green scoped report proves the whole
// design is green, because these are exactly the units the component's
// placement can influence.
func (idx *Index) CheckComponent(ref string) (*Report, error) {
	i, ok := idx.pos[ref]
	if !ok {
		return nil, fmt.Errorf("drc: unknown component %q", ref)
	}
	c := idx.d.Comps[i]
	d := idx.d
	r := &Report{}

	// Placement.
	r.Checks++
	if !c.Placed {
		r.Violations = append(r.Violations, Violation{
			Kind: KindUnplaced, Refs: []string{c.Ref},
			Detail: "component has no placement",
		})
	}

	// EMD rules touching the component, in rule order.
	if d.Rules != nil {
		for _, ri := range idx.rulesOf[ref] {
			ev := evalEMDRule(d, d.Rules.Rules[ri])
			if !ev.counted {
				continue
			}
			r.Checks++
			r.Pairs = append(r.Pairs, ev.pair)
			if ev.hasViol {
				r.Violations = append(r.Violations, ev.viol)
			}
		}
		sortPairs(r.Pairs)
	}

	// Clearance against grid neighbours, in component order with the
	// refs oriented as the full check would ((i,j) with i < j).
	if c.Placed {
		for _, j := range idx.neighbors(c) {
			o := d.Comps[j]
			a, b := c, o
			if j < i {
				a, b = o, c
			}
			r.Checks++
			if v, bad := evalClearancePair(d, a, b); bad {
				r.Violations = append(r.Violations, v)
			}
		}
	}

	// Containment and keepouts.
	if c.Placed {
		r.Checks++
		if v, bad := evalContainment(d, c); bad {
			r.Violations = append(r.Violations, v)
		}
		n, viols := evalKeepouts(d, c)
		r.Checks += n
		r.Violations = append(r.Violations, viols...)
	}

	// Groups: the component's own group is re-evaluated in full (its move
	// reshapes the bbox every foreigner is tested against); against each
	// foreign group only the component itself is tested.
	for _, name := range idx.groupNames {
		members := idx.members[name]
		if name == c.Group {
			for board := 0; board < d.Boards; board++ {
				bbox, active := groupBBoxOn(members, board)
				if !active {
					continue
				}
				for _, o := range d.Comps {
					if !o.Placed || o.Board != board || o.Group == name {
						continue
					}
					r.Checks++
					if v, bad := evalGroupMember(name, bbox, o); bad {
						r.Violations = append(r.Violations, v)
					}
				}
			}
			continue
		}
		if !c.Placed {
			continue
		}
		bbox, active := groupBBoxOn(members, c.Board)
		if !active {
			continue
		}
		r.Checks++
		if v, bad := evalGroupMember(name, bbox, c); bad {
			r.Violations = append(r.Violations, v)
		}
	}

	// Nets containing the component (length-limited ones only).
	for _, ni := range idx.netsOf[ref] {
		r.Checks++
		if v, bad := evalNet(d, d.Nets[ni]); bad {
			r.Violations = append(r.Violations, v)
		}
	}
	return r, nil
}

// CheckMove evaluates a hypothetical placement of one component without
// (observably) mutating the design: the component is temporarily placed,
// scope-checked, and restored. The grid is not re-bucketed for the probe —
// neighbour queries use the probed footprint directly, and the stale
// self-entry is excluded — so probing is allocation-light and leaves the
// index consistent.
func (idx *Index) CheckMove(ref string, center geom.Vec2, rot float64) (*Report, error) {
	i, ok := idx.pos[ref]
	if !ok {
		return nil, fmt.Errorf("drc: unknown component %q", ref)
	}
	c := idx.d.Comps[i]
	saved := *c
	c.Center, c.Rot, c.Placed = center, rot, true
	rep, err := idx.CheckComponent(ref)
	*c = saved
	return rep, err
}
