package drc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/rules"
)

// This file holds the single-rule evaluators shared by the full Check,
// the scoped Index.CheckComponent and the Incremental re-checker. Each
// evaluator decides exactly one rule instance ("unit") so every caller
// produces bit-identical violations and pair statuses regardless of how
// the units were selected.

// emdEval is the complete outcome of evaluating one EMD rule.
type emdEval struct {
	counted bool // both endpoints exist and are placed (the rule "counts")
	remote  bool // endpoints on different boards (decoupled by construction)
	pair    PairStatus
	hasViol bool
	viol    Violation
}

// evalEMDRule evaluates one pairwise minimum-distance rule.
func evalEMDRule(d *layout.Design, rule rules.Rule) emdEval {
	a, b := d.Find(rule.RefA), d.Find(rule.RefB)
	if a == nil || b == nil || !a.Placed || !b.Placed {
		return emdEval{}
	}
	ev := emdEval{counted: true}
	if a.Board != b.Board {
		// Different boards decouple by construction.
		ev.remote = true
		ev.pair = PairStatus{RefA: a.Ref, RefB: b.Ref, OK: true}
		return ev
	}
	need := d.EMDBetween(a, b, a.Rot, b.Rot)
	have := a.Center.Dist(b.Center)
	ok := have >= need-1e-9
	ev.pair = PairStatus{RefA: a.Ref, RefB: b.Ref, Required: need, Actual: have, OK: ok}
	if !ok {
		ev.hasViol = true
		ev.viol = Violation{
			Kind: KindEMD, Refs: []string{a.Ref, b.Ref},
			Detail: fmt.Sprintf("distance %.1f mm below EMD %.1f mm", have*1e3, need*1e3),
			Amount: need - have,
		}
	}
	return ev
}

// evalClearancePair evaluates the clearance rule between two placed
// components on the same board (the caller guarantees both conditions).
func evalClearancePair(d *layout.Design, a, b *layout.Component) (Violation, bool) {
	sep := a.Footprint().Separation(b.Footprint())
	overlap := a.Footprint().Overlaps(b.Footprint())
	if !overlap && sep >= d.Clearance-1e-9 {
		return Violation{}, false
	}
	detail := fmt.Sprintf("separation %.2f mm below clearance %.2f mm", sep*1e3, d.Clearance*1e3)
	if overlap {
		detail = "footprints overlap"
	}
	return Violation{
		Kind: KindClearance, Refs: []string{a.Ref, b.Ref},
		Detail: detail,
		Amount: d.Clearance - sep,
	}, true
}

// evalContainment checks that a placed component's footprint (inflated by
// the edge clearance) sits inside one of its allowed placement areas.
func evalContainment(d *layout.Design, c *layout.Component) (Violation, bool) {
	fp := c.Footprint().Inflate(d.EdgeClearance)
	for _, a := range d.AreasOf(c.Board, c.AreaName) {
		if a.Poly.ContainsRect(fp) {
			return Violation{}, false
		}
	}
	where := "any placement area"
	if c.AreaName != "" {
		where = fmt.Sprintf("area %q", c.AreaName)
	}
	return Violation{
		Kind: KindContainment, Refs: []string{c.Ref},
		Detail: "footprint not inside " + where,
	}, true
}

// evalKeepouts checks a placed component's body against every keepout on
// its board, returning the number of keepouts tested and the violations
// in keepout order.
func evalKeepouts(d *layout.Design, c *layout.Component) (int, []Violation) {
	body := c.Body()
	checks := 0
	var out []Violation
	for _, k := range d.Keepouts {
		if k.Board != c.Board {
			continue
		}
		checks++
		if body.Overlaps(k.Box) {
			out = append(out, Violation{
				Kind: KindKeepout, Refs: []string{c.Ref, k.Name},
				Detail: fmt.Sprintf("body intersects keepout %q", k.Name),
			})
		}
	}
	return checks, out
}

// groupBBoxOn returns the union footprint bounding box of the placed
// group members on a board, and whether any member is placed there.
func groupBBoxOn(members []*layout.Component, board int) (geom.Rect, bool) {
	var bbox geom.Rect
	active := false
	for _, m := range members {
		if !m.Placed || m.Board != board {
			continue
		}
		if !active {
			bbox = m.Footprint()
			active = true
		} else {
			bbox = bbox.Union(m.Footprint())
		}
	}
	return bbox, active
}

// evalGroupMember checks one foreign component against a group's bounding
// box. The caller guarantees c is placed, on the bbox's board and not a
// member of the group.
func evalGroupMember(name string, bbox geom.Rect, c *layout.Component) (Violation, bool) {
	if !bbox.Contains(c.Center) {
		return Violation{}, false
	}
	return Violation{
		Kind: KindGroup, Refs: []string{c.Ref, name},
		Detail: fmt.Sprintf("%s sits inside group %q area", c.Ref, name),
	}, true
}

// evalNet checks one net's star length against its limit. The caller
// guarantees n.MaxLength > 0.
func evalNet(d *layout.Design, n layout.Net) (Violation, bool) {
	l := d.NetLength(n)
	if l <= n.MaxLength {
		return Violation{}, false
	}
	return Violation{
		Kind: KindNetLength, Refs: []string{n.Name},
		Detail: fmt.Sprintf("net length %.1f mm exceeds %.1f mm", l*1e3, n.MaxLength*1e3),
		Amount: l - n.MaxLength,
	}, true
}
