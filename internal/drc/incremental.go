package drc

import (
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/layout"
)

// Scope describes which parts of the design one edit invalidated. The
// session engine translates each edit kind into a Scope; Recheck then
// re-evaluates exactly the rule units the scope can influence.
type Scope struct {
	Refs           []string // components whose placement state changed
	RulesChanged   bool     // the rule set changed (added/replaced/removed rules)
	AllClearance   bool     // the design clearance parameter changed
	AllContainment bool     // the edge-clearance parameter changed
}

// Delta is the violation diff produced by one Recheck: rules that newly
// broke, rules that recovered, and rules still broken with a different
// magnitude. Evals counts the rule units actually re-evaluated — the
// quantity the dependency index exists to keep small.
type Delta struct {
	Added    []Violation
	Resolved []Violation
	Updated  []Violation
	Evals    int
}

// violSlot caches the outcome of a single-violation unit.
type violSlot struct {
	has bool
	v   Violation
}

// groupBoardState caches one group's coherence unit on one board.
type groupBoardState struct {
	active bool
	bbox   geom.Rect
	viols  map[int]Violation // foreign comp index -> violation
}

type groupState struct {
	name   string
	boards []groupBoardState // indexed by board number
}

// Incremental maintains the full DRC state of a design as a set of cached
// per-unit results keyed by the dependency index, so that after an edit
// only the invalidated units are recomputed while Report still assembles
// the exact Report a from-scratch Check would produce.
type Incremental struct {
	d   *layout.Design
	idx *Index

	unplaced []violSlot           // per component
	emd      []emdEval            // per rule, parallel to d.Rules.Rules
	clear    map[[2]int]Violation // violating pairs only, key (i,j) i<j
	contain  []violSlot           // per component
	keep     [][]Violation        // per component, in keepout order
	groups   []*groupState        // parallel to idx.groupNames
	nets     []violSlot           // per net (length-limited only)
}

// NewIncremental evaluates the full rule set once and returns the
// incremental checker holding the per-unit results.
func NewIncremental(idx *Index) *Incremental {
	d := idx.d
	inc := &Incremental{
		d: d, idx: idx,
		unplaced: make([]violSlot, len(d.Comps)),
		contain:  make([]violSlot, len(d.Comps)),
		keep:     make([][]Violation, len(d.Comps)),
		clear:    map[[2]int]Violation{},
		nets:     make([]violSlot, len(d.Nets)),
	}
	for i := range d.Comps {
		inc.evalUnplaced(i)
		inc.evalContain(i)
		inc.evalKeep(i)
	}
	inc.rebuildEMD()
	for i, a := range d.Comps {
		if !a.Placed {
			continue
		}
		for j := i + 1; j < len(d.Comps); j++ {
			b := d.Comps[j]
			if !b.Placed || a.Board != b.Board {
				continue
			}
			if v, bad := evalClearancePair(d, a, b); bad {
				inc.clear[[2]int{i, j}] = v
			}
		}
	}
	for _, name := range idx.groupNames {
		gs := &groupState{name: name, boards: make([]groupBoardState, d.Boards)}
		inc.groups = append(inc.groups, gs)
		inc.rebuildGroup(gs)
	}
	for ni := range d.Nets {
		inc.evalNetUnit(ni)
	}
	return inc
}

// Index returns the dependency index the checker shares with its callers.
func (inc *Incremental) Index() *Index { return inc.idx }

func (inc *Incremental) evalUnplaced(i int) {
	c := inc.d.Comps[i]
	inc.unplaced[i] = violSlot{}
	if !c.Placed {
		inc.unplaced[i] = violSlot{has: true, v: Violation{
			Kind: KindUnplaced, Refs: []string{c.Ref},
			Detail: "component has no placement",
		}}
	}
}

func (inc *Incremental) evalContain(i int) int {
	c := inc.d.Comps[i]
	inc.contain[i] = violSlot{}
	if !c.Placed {
		return 0
	}
	v, bad := evalContainment(inc.d, c)
	inc.contain[i] = violSlot{has: bad, v: v}
	return 1
}

func (inc *Incremental) evalKeep(i int) int {
	c := inc.d.Comps[i]
	inc.keep[i] = nil
	if !c.Placed {
		return 0
	}
	n, viols := evalKeepouts(inc.d, c)
	inc.keep[i] = viols
	return n
}

func (inc *Incremental) evalNetUnit(ni int) int {
	nt := inc.d.Nets[ni]
	inc.nets[ni] = violSlot{}
	if nt.MaxLength <= 0 {
		return 0
	}
	v, bad := evalNet(inc.d, nt)
	inc.nets[ni] = violSlot{has: bad, v: v}
	return 1
}

func (inc *Incremental) rebuildEMD() int {
	if inc.d.Rules == nil {
		inc.emd = nil
		return 0
	}
	rs := inc.d.Rules.Rules
	inc.emd = make([]emdEval, len(rs))
	for i, r := range rs {
		inc.emd[i] = evalEMDRule(inc.d, r)
	}
	return len(rs)
}

func (inc *Incremental) rebuildGroup(gs *groupState) int {
	evals := 0
	members := inc.idx.members[gs.name]
	for b := 0; b < inc.d.Boards; b++ {
		bbox, active := groupBBoxOn(members, b)
		st := &gs.boards[b]
		st.active, st.bbox, st.viols = active, bbox, nil
		if !active {
			continue
		}
		for ci, c := range inc.d.Comps {
			if !c.Placed || c.Board != b || c.Group == gs.name {
				continue
			}
			evals++
			if v, bad := evalGroupMember(gs.name, bbox, c); bad {
				if st.viols == nil {
					st.viols = map[int]Violation{}
				}
				st.viols[ci] = v
			}
		}
	}
	return evals
}

// violKey identifies a violation by rule instance: two evaluations of the
// same unit produce the same key even when the magnitude differs.
func violKey(v Violation) string {
	return string(v.Kind) + "\x00" + strings.Join(v.Refs, "\x00")
}

// Recheck re-evaluates the units a scope invalidated and returns the
// violation diff. The moved components are re-bucketed in the spatial
// grid first, so geometric neighbourhoods reflect the new placement.
func (inc *Incremental) Recheck(sc Scope) *Delta {
	d := inc.d
	delta := &Delta{}
	oldV, newV := map[string]Violation{}, map[string]Violation{}

	moved := make([]int, 0, len(sc.Refs))
	seen := map[int]bool{}
	for _, ref := range sc.Refs {
		if i, ok := inc.idx.pos[ref]; ok && !seen[i] {
			seen[i] = true
			moved = append(moved, i)
		}
		inc.idx.Update(ref)
	}
	sort.Ints(moved)

	// Per-component units: placement, containment, keepouts.
	for _, i := range moved {
		if s := inc.unplaced[i]; s.has {
			oldV[violKey(s.v)] = s.v
		}
		inc.evalUnplaced(i)
		delta.Evals++
		if s := inc.unplaced[i]; s.has {
			newV[violKey(s.v)] = s.v
		}
	}
	containSet := moved
	if sc.AllContainment {
		containSet = allIndices(len(d.Comps))
	}
	for _, i := range containSet {
		if s := inc.contain[i]; s.has {
			oldV[violKey(s.v)] = s.v
		}
		delta.Evals += inc.evalContain(i)
		if s := inc.contain[i]; s.has {
			newV[violKey(s.v)] = s.v
		}
	}
	for _, i := range moved {
		for _, v := range inc.keep[i] {
			oldV[violKey(v)] = v
		}
		delta.Evals += inc.evalKeep(i)
		for _, v := range inc.keep[i] {
			newV[violKey(v)] = v
		}
	}

	// EMD rules.
	if sc.RulesChanged {
		for _, ev := range inc.emd {
			if ev.hasViol {
				oldV[violKey(ev.viol)] = ev.viol
			}
		}
		inc.idx.RefreshRules()
		delta.Evals += inc.rebuildEMD()
		for _, ev := range inc.emd {
			if ev.hasViol {
				newV[violKey(ev.viol)] = ev.viol
			}
		}
	} else if d.Rules != nil && len(moved) > 0 {
		ruleSet := map[int]bool{}
		var ruleIdx []int
		for _, i := range moved {
			for _, ri := range inc.idx.rulesOf[d.Comps[i].Ref] {
				if !ruleSet[ri] {
					ruleSet[ri] = true
					ruleIdx = append(ruleIdx, ri)
				}
			}
		}
		sort.Ints(ruleIdx)
		for _, ri := range ruleIdx {
			if ev := inc.emd[ri]; ev.hasViol {
				oldV[violKey(ev.viol)] = ev.viol
			}
			inc.emd[ri] = evalEMDRule(d, d.Rules.Rules[ri])
			delta.Evals++
			if ev := inc.emd[ri]; ev.hasViol {
				newV[violKey(ev.viol)] = ev.viol
			}
		}
	}

	// Clearance pairs: previously violating pairs touching a moved
	// component (they may have recovered) plus the moved components'
	// current grid neighbourhoods (new violations can only appear there).
	pairSet := map[[2]int]bool{}
	var pairs [][2]int
	addPair := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		k := [2]int{i, j}
		if !pairSet[k] {
			pairSet[k] = true
			pairs = append(pairs, k)
		}
	}
	if sc.AllClearance {
		for i, a := range d.Comps {
			if !a.Placed {
				continue
			}
			for j := i + 1; j < len(d.Comps); j++ {
				if b := d.Comps[j]; b.Placed && b.Board == a.Board {
					addPair(i, j)
				}
			}
		}
	}
	for _, i := range moved {
		for k := range inc.clear {
			if k[0] == i || k[1] == i {
				addPair(k[0], k[1])
			}
		}
		for _, j := range inc.idx.neighbors(d.Comps[i]) {
			addPair(i, j)
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x][0] != pairs[y][0] {
			return pairs[x][0] < pairs[y][0]
		}
		return pairs[x][1] < pairs[y][1]
	})
	for _, k := range pairs {
		if v, ok := inc.clear[k]; ok {
			oldV[violKey(v)] = v
		}
		a, b := d.Comps[k[0]], d.Comps[k[1]]
		if !a.Placed || !b.Placed || a.Board != b.Board {
			delete(inc.clear, k)
			continue
		}
		delta.Evals++
		if v, bad := evalClearancePair(d, a, b); bad {
			inc.clear[k] = v
			newV[violKey(v)] = v
		} else {
			delete(inc.clear, k)
		}
	}

	// Groups: a moved member reshapes its own group's bounding box, so
	// that group re-evaluates in full; against every foreign group only
	// the moved component's own membership entry is retested.
	if len(moved) > 0 {
		ownGroups := map[string]bool{}
		for _, i := range moved {
			if g := d.Comps[i].Group; g != "" {
				ownGroups[g] = true
			}
		}
		for gi, name := range inc.idx.groupNames {
			gs := inc.groups[gi]
			if ownGroups[name] {
				for b := range gs.boards {
					for _, v := range gs.boards[b].viols {
						oldV[violKey(v)] = v
					}
				}
				delta.Evals += inc.rebuildGroup(gs)
				for b := range gs.boards {
					for _, v := range gs.boards[b].viols {
						newV[violKey(v)] = v
					}
				}
				continue
			}
			for _, i := range moved {
				c := d.Comps[i]
				if c.Group == name {
					continue
				}
				for b := range gs.boards {
					st := &gs.boards[b]
					if v, ok := st.viols[i]; ok {
						oldV[violKey(v)] = v
						delete(st.viols, i)
					}
					if !st.active || !c.Placed || c.Board != b {
						continue
					}
					delta.Evals++
					if v, bad := evalGroupMember(name, st.bbox, c); bad {
						if st.viols == nil {
							st.viols = map[int]Violation{}
						}
						st.viols[i] = v
						newV[violKey(v)] = v
					}
				}
			}
		}
	}

	// Nets containing a moved component.
	if len(moved) > 0 {
		netSet := map[int]bool{}
		var netIdx []int
		for _, i := range moved {
			for _, ni := range inc.idx.netsOf[d.Comps[i].Ref] {
				if !netSet[ni] {
					netSet[ni] = true
					netIdx = append(netIdx, ni)
				}
			}
		}
		sort.Ints(netIdx)
		for _, ni := range netIdx {
			if s := inc.nets[ni]; s.has {
				oldV[violKey(s.v)] = s.v
			}
			delta.Evals += inc.evalNetUnit(ni)
			if s := inc.nets[ni]; s.has {
				newV[violKey(s.v)] = s.v
			}
		}
	}

	diffViolations(oldV, newV, delta)
	return delta
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// diffViolations fills the delta from before/after snapshots of the same
// unit set, sorted canonically for stable output.
func diffViolations(oldV, newV map[string]Violation, delta *Delta) {
	for k, nv := range newV {
		if ov, ok := oldV[k]; ok {
			if ov.Detail != nv.Detail || ov.Amount != nv.Amount {
				delta.Updated = append(delta.Updated, nv)
			}
		} else {
			delta.Added = append(delta.Added, nv)
		}
	}
	for k, ov := range oldV {
		if _, ok := newV[k]; !ok {
			delta.Resolved = append(delta.Resolved, ov)
		}
	}
	sortViolations(delta.Added)
	sortViolations(delta.Resolved)
	sortViolations(delta.Updated)
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Kind != vs[j].Kind {
			return vs[i].Kind < vs[j].Kind
		}
		a := strings.Join(vs[i].Refs, "\x00")
		b := strings.Join(vs[j].Refs, "\x00")
		return a < b
	})
}

// Report assembles the cached per-unit results into the exact Report a
// from-scratch Check on the current design would return: same violations
// in the same order, same pair statuses, same check count.
func (inc *Incremental) Report() *Report {
	r := &Report{Checks: inc.FullChecks()}
	for _, s := range inc.unplaced {
		if s.has {
			r.Violations = append(r.Violations, s.v)
		}
	}
	for _, ev := range inc.emd {
		if ev.counted {
			r.Pairs = append(r.Pairs, ev.pair)
		}
		if ev.hasViol {
			r.Violations = append(r.Violations, ev.viol)
		}
	}
	sortPairs(r.Pairs)
	pairKeys := make([][2]int, 0, len(inc.clear))
	for k := range inc.clear {
		pairKeys = append(pairKeys, k)
	}
	sort.Slice(pairKeys, func(x, y int) bool {
		if pairKeys[x][0] != pairKeys[y][0] {
			return pairKeys[x][0] < pairKeys[y][0]
		}
		return pairKeys[x][1] < pairKeys[y][1]
	})
	for _, k := range pairKeys {
		r.Violations = append(r.Violations, inc.clear[k])
	}
	for _, s := range inc.contain {
		if s.has {
			r.Violations = append(r.Violations, s.v)
		}
	}
	for _, viols := range inc.keep {
		r.Violations = append(r.Violations, viols...)
	}
	for _, gs := range inc.groups {
		for b := range gs.boards {
			st := &gs.boards[b]
			if !st.active || len(st.viols) == 0 {
				continue
			}
			idxs := make([]int, 0, len(st.viols))
			for ci := range st.viols {
				idxs = append(idxs, ci)
			}
			sort.Ints(idxs)
			for _, ci := range idxs {
				r.Violations = append(r.Violations, st.viols[ci])
			}
		}
	}
	for _, s := range inc.nets {
		if s.has {
			r.Violations = append(r.Violations, s.v)
		}
	}
	return r
}

// FullChecks returns the number of checks a from-scratch Check on the
// current design would perform — the denominator of the incremental
// speedup and the Checks field of Report.
func (inc *Incremental) FullChecks() int {
	d := inc.d
	checks := len(d.Comps) // placement checks
	for _, ev := range inc.emd {
		if ev.counted {
			checks++
		}
	}
	placedPerBoard := make([]int, d.Boards)
	keepoutsPerBoard := make([]int, d.Boards)
	for _, k := range d.Keepouts {
		if k.Board >= 0 && k.Board < d.Boards {
			keepoutsPerBoard[k.Board]++
		}
	}
	placedTotal := 0
	for _, c := range d.Comps {
		if c.Placed {
			placedPerBoard[c.Board]++
			placedTotal++
			checks += keepoutsPerBoard[c.Board]
		}
	}
	for _, n := range placedPerBoard {
		checks += n * (n - 1) / 2
	}
	checks += placedTotal // containment
	for _, gs := range inc.groups {
		memberPlaced := make([]int, d.Boards)
		for _, m := range inc.idx.members[gs.name] {
			if m.Placed {
				memberPlaced[m.Board]++
			}
		}
		for b := range gs.boards {
			if gs.boards[b].active {
				checks += placedPerBoard[b] - memberPlaced[b]
			}
		}
	}
	for _, nt := range d.Nets {
		if nt.MaxLength > 0 {
			checks++
		}
	}
	return checks
}

// ViolationCount returns the current number of violations without
// assembling a report.
func (inc *Incremental) ViolationCount() int {
	n := 0
	for _, s := range inc.unplaced {
		if s.has {
			n++
		}
	}
	for _, ev := range inc.emd {
		if ev.hasViol {
			n++
		}
	}
	n += len(inc.clear)
	for _, s := range inc.contain {
		if s.has {
			n++
		}
	}
	for _, viols := range inc.keep {
		n += len(viols)
	}
	for _, gs := range inc.groups {
		for b := range gs.boards {
			n += len(gs.boards[b].viols)
		}
	}
	for _, s := range inc.nets {
		if s.has {
			n++
		}
	}
	return n
}

// WorstEMDMargin returns the smallest (actual − required) distance margin
// over the evaluated same-board EMD pairs — the design's worst EMI margin.
// ok is false when no same-board pair is currently evaluated.
func (inc *Incremental) WorstEMDMargin() (margin float64, ok bool) {
	for _, ev := range inc.emd {
		if !ev.counted || ev.remote {
			continue
		}
		m := ev.pair.Actual - ev.pair.Required
		if !ok || m < margin {
			margin, ok = m, true
		}
	}
	return margin, ok
}
