package drc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/rules"
)

// design builds a simple 100×80 mm single-board problem with two magnetic
// caps under a 20 mm PEMD rule, one mechanical part, a keepout and a net.
func design() *layout.Design {
	d := &layout.Design{
		Name:      "drc test",
		Boards:    1,
		Clearance: 1e-3,
		Areas: []layout.Area{
			{Name: "main", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.1, 0.08))},
		},
		Rules: rules.NewSet(nil),
	}
	d.Comps = append(d.Comps,
		&layout.Component{Ref: "C1", W: 0.018, L: 0.008, H: 0.014, Axis: geom.V3(0, 1, 0)},
		&layout.Component{Ref: "C2", W: 0.018, L: 0.008, H: 0.014, Axis: geom.V3(0, 1, 0)},
		&layout.Component{Ref: "Q1", W: 0.010, L: 0.010, H: 0.004},
	)
	d.Rules.Add(rules.Rule{RefA: "C1", RefB: "C2", PEMD: 0.02})
	d.Nets = append(d.Nets, layout.Net{Name: "n1", MaxLength: 0.05, Refs: []string{"C1", "C2"}})
	return d
}

func place(d *layout.Design, ref string, x, y, rot float64) {
	c := d.Find(ref)
	c.Placed = true
	c.Center = geom.V2(x, y)
	c.Rot = rot
}

func placeAll(d *layout.Design) {
	place(d, "C1", 0.02, 0.04, 0)
	place(d, "C2", 0.05, 0.04, 0)
	place(d, "Q1", 0.08, 0.04, 0)
}

func TestGreenDesign(t *testing.T) {
	t.Parallel()
	d := design()
	placeAll(d)
	r := Check(d)
	if !r.Green() {
		t.Fatalf("expected green:\n%s", r)
	}
	if len(r.Pairs) != 1 || !r.Pairs[0].OK {
		t.Errorf("pair status = %+v", r.Pairs)
	}
	if !strings.Contains(r.String(), "[GREEN]") {
		t.Error("report should show green markers")
	}
}

func TestUnplacedViolation(t *testing.T) {
	t.Parallel()
	d := design()
	r := Check(d)
	if got := r.ByKind(KindUnplaced); len(got) != 3 {
		t.Errorf("unplaced = %d", len(got))
	}
}

func TestEMDViolationAndRotationCure(t *testing.T) {
	t.Parallel()
	d := design()
	placeAll(d)
	// Move C2 within 20 mm of C1 with parallel axes: EMD violated.
	place(d, "C2", 0.032, 0.04, 0)
	r := Check(d)
	v := r.ByKind(KindEMD)
	if len(v) != 1 {
		t.Fatalf("EMD violations = %d\n%s", len(v), r)
	}
	if v[0].Amount < 0.007 || v[0].Amount > 0.009 {
		t.Errorf("violation amount = %v m", v[0].Amount)
	}
	if !strings.Contains(r.String(), "[RED]") {
		t.Error("report should show red markers")
	}
	// The paper's Figure 6 cure: rotate one capacitor by 90° — the EMD
	// collapses and the same distance becomes legal.
	place(d, "C2", 0.032, 0.04, math.Pi/2)
	r = Check(d)
	if len(r.ByKind(KindEMD)) != 0 {
		t.Errorf("rotation should cure the EMD violation:\n%s", r)
	}
}

func TestEMDAcrossBoardsIsOK(t *testing.T) {
	t.Parallel()
	d := design()
	d.Boards = 2
	d.Areas = append(d.Areas, layout.Area{
		Name: "b1", Board: 1, Poly: geom.RectPolygon(geom.R(0, 0, 0.1, 0.08)),
	})
	placeAll(d)
	d.Find("C2").Board = 1
	place(d, "C2", 0.021, 0.04, 0) // would violate on the same board
	r := Check(d)
	if len(r.ByKind(KindEMD)) != 0 {
		t.Errorf("cross-board pair should not violate:\n%s", r)
	}
}

func TestClearanceViolation(t *testing.T) {
	t.Parallel()
	d := design()
	placeAll(d)
	place(d, "Q1", 0.0605, 0.04, 0) // 0.5 mm gap to C2's right edge
	r := Check(d)
	v := r.ByKind(KindClearance)
	if len(v) != 1 {
		t.Fatalf("clearance violations = %d\n%s", len(v), r)
	}
	// Overlapping bodies are reported distinctly.
	place(d, "Q1", 0.05, 0.04, 0)
	r = Check(d)
	v = r.ByKind(KindClearance)
	if len(v) != 1 || !strings.Contains(v[0].Detail, "overlap") {
		t.Errorf("overlap detail = %+v", v)
	}
}

func TestContainmentViolation(t *testing.T) {
	t.Parallel()
	d := design()
	placeAll(d)
	place(d, "Q1", 0.098, 0.04, 0) // sticks out of the board
	r := Check(d)
	if len(r.ByKind(KindContainment)) != 1 {
		t.Errorf("containment violations:\n%s", r)
	}
	// Component constrained to a named area.
	d2 := design()
	d2.Areas = append(d2.Areas, layout.Area{
		Name: "corner", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.02, 0.02)),
	})
	d2.Find("Q1").AreaName = "corner"
	placeAll(d2)
	place(d2, "Q1", 0.01, 0.01, 0)
	if r := Check(d2); !r.Green() {
		t.Errorf("Q1 in its area should be green:\n%s", r)
	}
	place(d2, "Q1", 0.05, 0.04, 0) // inside board but outside its area
	if r := Check(d2); len(r.ByKind(KindContainment)) != 1 {
		t.Error("area-restricted component outside its area should violate")
	}
}

func TestEdgeClearance(t *testing.T) {
	t.Parallel()
	d := design()
	d.EdgeClearance = 2e-3
	placeAll(d)
	// Q1 (10×10 mm) with its edge 1 mm from the board edge: violates the
	// 2 mm edge clearance.
	place(d, "Q1", 0.094, 0.04, 0) // right edge at 99 mm, board ends at 100 mm
	r := Check(d)
	if len(r.ByKind(KindContainment)) != 1 {
		t.Errorf("edge clearance not enforced:\n%s", r)
	}
	// 3 mm away from the edge: fine.
	place(d, "Q1", 0.092, 0.04, 0)
	if r := Check(d); !r.Green() {
		t.Errorf("3 mm edge distance should pass:\n%s", r)
	}
}

func TestKeepoutZOffset(t *testing.T) {
	t.Parallel()
	d := design()
	// A keepout hovering 6 mm above the board (e.g. housing rib).
	d.Keepouts = append(d.Keepouts, layout.Keepout{
		Name: "rib", Board: 0,
		Box: geom.CuboidOf(geom.R(0.07, 0.03, 0.09, 0.05), 0.006, 0.01),
	})
	placeAll(d)
	// Q1 is 4 mm tall: fits under the rib.
	r := Check(d)
	if len(r.ByKind(KindKeepout)) != 0 {
		t.Errorf("low part under hovering keepout should pass:\n%s", r)
	}
	// C2 is 14 mm tall: collides if moved under the rib.
	place(d, "C2", 0.08, 0.04, 0)
	place(d, "Q1", 0.05, 0.04, 0)
	r = Check(d)
	if len(r.ByKind(KindKeepout)) != 1 {
		t.Errorf("tall part under keepout should violate:\n%s", r)
	}
}

func TestGroupCoherence(t *testing.T) {
	t.Parallel()
	d := design()
	d.Find("C1").Group = "filter"
	d.Find("C2").Group = "filter"
	placeAll(d)
	// Q1 between the group members: inside the group bbox.
	place(d, "Q1", 0.035, 0.04, 0)
	r := Check(d)
	if len(r.ByKind(KindGroup)) != 1 {
		t.Errorf("interleaved foreign part should violate:\n%s", r)
	}
	place(d, "Q1", 0.08, 0.04, 0)
	if r := Check(d); len(r.ByKind(KindGroup)) != 0 {
		t.Errorf("separated part should pass:\n%s", r)
	}
}

func TestNetLengthRule(t *testing.T) {
	t.Parallel()
	d := design()
	placeAll(d)
	place(d, "C2", 0.09, 0.07, 0) // far from C1: net longer than 50 mm
	r := Check(d)
	if len(r.ByKind(KindNetLength)) != 1 {
		t.Errorf("long net should violate:\n%s", r)
	}
}

func TestCheckMoveDoesNotMutate(t *testing.T) {
	t.Parallel()
	d := design()
	placeAll(d)
	before := *d.Find("C2")
	rep, err := CheckMove(d, "C2", geom.V2(0.021, 0.04), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ByKind(KindEMD)) != 1 {
		t.Error("hypothetical move should violate EMD")
	}
	after := *d.Find("C2")
	if before.Center != after.Center || before.Rot != after.Rot || before.Placed != after.Placed {
		t.Error("CheckMove mutated the component")
	}
	if _, err := CheckMove(d, "nope", geom.V2(0, 0), 0); err == nil {
		t.Error("unknown ref should error")
	}
}
