package session

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/buck"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/workload"
)

// testDesign builds a two-board synthetic workload with some components
// already placed, a net length budget and a keepout, so every rule unit
// class is live.
func testDesign(seed int64) *layout.Design {
	rng := rand.New(rand.NewSource(seed))
	d := workload.Synthetic(18, 50, 3, 0.16, 0.12)
	d.Boards = 2
	d.Areas = append(d.Areas, layout.Area{
		Name: d.Areas[0].Name, Board: 1, Poly: append(geom.Polygon(nil), d.Areas[0].Poly...),
	})
	d.Keepouts = append(d.Keepouts, layout.Keepout{
		Name: "conn", Board: 0, Box: geom.CuboidOf(geom.R(0, 0.04, 0.012, 0.07), 0, 0.03),
	})
	if len(d.Nets) > 0 {
		d.Nets[0].MaxLength = 0.05
	}
	for _, c := range d.Comps {
		if rng.Intn(3) > 0 {
			c.Placed = true
			c.Center = geom.V2(0.005+rng.Float64()*0.15, 0.005+rng.Float64()*0.11)
			c.Board = rng.Intn(2)
		}
	}
	return d
}

// randomEdit builds one random valid-looking edit (it may still be
// rejected, e.g. rotating an unplaced part — the test tolerates that).
func randomEdit(rng *rand.Rand, d *layout.Design) Edit {
	ref := d.Comps[rng.Intn(len(d.Comps))].Ref
	switch rng.Intn(8) {
	case 0, 1, 2, 3:
		return Edit{
			Op: OpMove, Ref: ref,
			Center: geom.V2(0.005+rng.Float64()*0.15, 0.005+rng.Float64()*0.11),
			Rot:    float64(rng.Intn(4)) * geom.Rad(90),
		}
	case 4:
		return Edit{Op: OpRotate, Ref: ref, Rot: float64(rng.Intn(4)) * geom.Rad(90)}
	case 5:
		return Edit{Op: OpSwapBoard, Ref: ref, Board: rng.Intn(2)}
	case 6:
		b := d.Comps[rng.Intn(len(d.Comps))].Ref
		return Edit{Op: OpAddRule, Ref: ref, RefB: b, PEMD: 0.005 + rng.Float64()*0.03}
	default:
		p := ParamClearance
		if rng.Intn(2) == 0 {
			p = ParamEdgeClearance
		}
		return Edit{Op: OpParam, Param: p, Value: rng.Float64() * 2e-3}
	}
}

// TestSessionIncrementalEquivalence is the acceptance test of the issue:
// N random edits with interleaved undo/redo, and after every step the
// session's incrementally maintained report must be deeply equal to a
// from-scratch drc.Check on a snapshot of the design.
func TestSessionIncrementalEquivalence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	s := New("t", testDesign(1))
	defer s.Close()
	check := func(step int, what string) {
		t.Helper()
		got := s.Report()
		want := drc.Check(s.DesignSnapshot())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d (%s): incremental report diverged\nincremental:\n%s\nfull:\n%s",
				step, what, got, want)
		}
	}
	check(0, "initial")
	applied := 0
	for step := 1; step <= 90; step++ {
		switch r := rng.Intn(10); {
		case r == 0 && applied > 0:
			if _, err := s.Undo(); err != nil {
				t.Fatalf("step %d: undo: %v", step, err)
			}
			applied--
			check(step, "undo")
		case r == 1:
			if _, err := s.Redo(); err == nil {
				applied++
				check(step, "redo")
			}
		default:
			e := randomEdit(rng, s.DesignSnapshot())
			if _, err := s.Apply(e); err != nil {
				continue // invalid edits must not corrupt state
			}
			applied++
			check(step, e.Op)
		}
	}
	if applied == 0 {
		t.Fatal("no edits applied; test exercised nothing")
	}

	// A full undo unwind must land exactly on a state equal to a fresh
	// from-scratch check as well.
	for {
		if _, err := s.Undo(); err != nil {
			break
		}
	}
	check(-1, "full unwind")
}

// TestSessionUndoRedoRoundTrip pins that undo+redo is an identity on both
// the design bytes and the report.
func TestSessionUndoRedoRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	s := New("t", testDesign(5))
	defer s.Close()
	for i := 0; i < 25; i++ {
		e := randomEdit(rng, s.DesignSnapshot())
		if _, err := s.Apply(e); err != nil {
			continue
		}
		before, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		repBefore := s.Report()
		if _, err := s.Undo(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Redo(); err != nil {
			t.Fatal(err)
		}
		after, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if string(before) != string(after) {
			t.Fatalf("undo+redo changed the design:\nbefore:\n%s\nafter:\n%s", before, after)
		}
		if !reflect.DeepEqual(repBefore, s.Report()) {
			t.Fatal("undo+redo changed the report")
		}
	}
}

// TestSessionSnapshotRestore verifies a snapshot re-opens as a session in
// the identical design state.
func TestSessionSnapshotRestore(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(8))
	s := New("a", testDesign(8))
	defer s.Close()
	for i := 0; i < 15; i++ {
		_, _ = s.Apply(randomEdit(rng, s.DesignSnapshot()))
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := layout.ReadString(string(snap))
	if err != nil {
		t.Fatalf("snapshot does not parse: %v\n%s", err, snap)
	}
	s2 := New("b", d2)
	defer s2.Close()
	// Reports must agree (the serialisation quantizes to the format's
	// 4 decimals of a millimeter; compare the check verdicts).
	r1, r2 := s.Report(), s2.Report()
	if r1.Checks != r2.Checks || len(r1.Violations) != len(r2.Violations) || len(r1.Pairs) != len(r2.Pairs) {
		t.Fatalf("restored session differs: %d/%d/%d vs %d/%d/%d checks/viols/pairs",
			r1.Checks, len(r1.Violations), len(r1.Pairs), r2.Checks, len(r2.Violations), len(r2.Pairs))
	}
	if st := s2.State(); st.CanUndo || st.CanRedo {
		t.Fatal("restored session should start with an empty journal")
	}
}

// TestSessionCouplingEquivalence creates a project-backed session, edits
// it, and demands the tracked coupling set equal a from-scratch
// ExtractCouplings over the placed pairs of the final design.
func TestSessionCouplingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("PEEC extraction in -short mode")
	}
	t.Parallel()
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		t.Fatal(err)
	}
	s, err := NewWithProject("t", p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	edits := []Edit{
		{Op: OpMove, Ref: "CIN1", Center: geom.V2(0.03, 0.05)},
		{Op: OpMove, Ref: "LF1", Center: geom.V2(0.07, 0.02)},
		{Op: OpRotate, Ref: "CIN1", Rot: geom.Rad(90)},
		{Op: OpMove, Ref: "CIN1", Center: geom.V2(0.05, 0.06)},
	}
	for _, e := range edits {
		if _, err := s.Apply(e); err != nil {
			t.Fatalf("%s %s: %v", e.Op, e.Ref, err)
		}
	}
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}

	got := s.Couplings()

	// From scratch on the session's final design.
	p2 := *p
	p2.Design = s.DesignSnapshot()
	var live [][2]string
	for _, pair := range p2.AllPairs() {
		a, b := p2.Design.Find(pair[0]), p2.Design.Find(pair[1])
		if a != nil && b != nil && a.Placed && b.Placed {
			live = append(live, pair)
		}
	}
	want, err := p2.ExtractCouplings(live)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tracked couplings diverge from from-scratch extraction\ntracked: %v\nfresh:   %v", got, want)
	}
}

// TestSessionConcurrent hammers one session from many goroutines: edits,
// state reads, report assembly, snapshots and subscribers racing. Run
// under -race this is the concurrency acceptance test.
func TestSessionConcurrent(t *testing.T) {
	t.Parallel()
	s := New("t", testDesign(13))
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				switch rng.Intn(6) {
				case 0:
					_, _ = s.Undo()
				case 1:
					_, _ = s.Redo()
				default:
					_, _ = s.Apply(randomEdit(rng, s.DesignSnapshot()))
				}
			}
		}(int64(g) + 100)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_ = s.State()
				_ = s.Report()
				if _, err := s.Snapshot(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch, cancel := s.Subscribe(0)
		defer cancel()
		for i := 0; i < 50; i++ {
			if _, open := <-ch; !open {
				return
			}
		}
	}()
	wg.Wait()

	// After the storm the incremental state must still be exact.
	got := s.Report()
	want := drc.Check(s.DesignSnapshot())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-race report diverged\nincremental:\n%s\nfull:\n%s", got, want)
	}
}

// TestSessionEvents checks the delta stream: sequence numbers, replay
// from the ring, and channel closure on session close.
func TestSessionEvents(t *testing.T) {
	t.Parallel()
	s := New("t", testDesign(21))
	ch, cancel := s.Subscribe(0)
	defer cancel()
	e := Edit{Op: OpMove, Ref: s.DesignSnapshot().Comps[0].Ref, Center: geom.V2(0.02, 0.02)}
	d1, err := s.Apply(e)
	if err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.Seq != d1.Seq || got.Op != OpMove {
		t.Fatalf("streamed delta %+v does not match applied %+v", got, d1)
	}

	// A late subscriber replays the ring.
	ch2, cancel2 := s.Subscribe(0)
	defer cancel2()
	if replay := <-ch2; replay.Seq != d1.Seq {
		t.Fatalf("replay seq = %d, want %d", replay.Seq, d1.Seq)
	}
	// A subscriber at the current seq gets nothing until the next edit.
	ch3, cancel3 := s.Subscribe(d1.Seq)
	defer cancel3()
	select {
	case d := <-ch3:
		t.Fatalf("unexpected replay %+v", d)
	default:
	}

	s.Close()
	if _, open := <-ch3; open {
		t.Fatal("channel should close on session close")
	}
	if _, err := s.Apply(e); err == nil {
		t.Fatal("apply on a closed session should fail")
	}
}

// TestManagerLifecycle covers the cap, TTL eviction and stats.
func TestManagerLifecycle(t *testing.T) {
	t.Parallel()
	m := NewManager(0, 2)
	d := workload.Synthetic(4, 4, 1, 0.1, 0.08)
	s1, err := m.Create(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(d, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(d, nil); err == nil {
		t.Fatal("cap should reject the third session")
	}
	if got, ok := m.Get(s1.ID); !ok || got != s1 {
		t.Fatal("lookup failed")
	}
	if n := len(m.List()); n != 2 {
		t.Fatalf("list = %d sessions, want 2", n)
	}
	if !m.Delete(s1.ID) || m.Delete(s1.ID) {
		t.Fatal("delete should succeed once")
	}
	st := m.Stats()
	if st.Active != 1 || st.Created != 2 {
		t.Fatalf("stats = %+v", st)
	}
	m.CloseAll()
	if m.Len() != 0 {
		t.Fatal("CloseAll left sessions behind")
	}
}

// TestSealFencesMutations: a sealed session (migration fence, see the
// cluster takeover handshake) rejects Apply/Undo/Redo with ErrSealed
// and moves no sequence number; Unseal restores full service with the
// history intact. Seal acquires the session lock every mutation
// journals under, so its return is the fencing guarantee the adopter
// relies on before fetching the WAL.
func TestSealFencesMutations(t *testing.T) {
	t.Parallel()
	s := New("seal", testDesign(3))
	defer s.Close()
	if _, err := s.Apply(Edit{Op: OpParam, Param: ParamClearance, Value: 1e-3}); err != nil {
		t.Fatalf("apply before seal: %v", err)
	}
	seq := s.Seq()

	s.Seal()
	if !s.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}
	if _, err := s.Apply(Edit{Op: OpParam, Param: ParamClearance, Value: 2e-3}); !errors.Is(err, ErrSealed) {
		t.Fatalf("apply on sealed session: %v, want ErrSealed", err)
	}
	if _, err := s.Undo(); !errors.Is(err, ErrSealed) {
		t.Fatalf("undo on sealed session: %v, want ErrSealed", err)
	}
	if _, err := s.Redo(); !errors.Is(err, ErrSealed) {
		t.Fatalf("redo on sealed session: %v, want ErrSealed", err)
	}
	if s.Seq() != seq {
		t.Fatalf("seq moved %d → %d under the fence", seq, s.Seq())
	}
	s.Seal() // idempotent

	s.Unseal()
	if s.Sealed() {
		t.Fatal("Sealed() true after Unseal")
	}
	if _, err := s.Undo(); err != nil {
		t.Fatalf("undo after unseal: %v — pre-seal history must survive the fence", err)
	}
}
