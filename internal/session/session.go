// Package session implements stateful, concurrency-safe EMI design
// sessions: each session owns a private copy of a layout.Design, applies
// edits (move / rotate / swap-board / add-rule / parameter tweak) through
// an undo/redo journal, and after every edit recomputes only the rule
// units the edit invalidated — the dependency-indexed incremental DRC of
// internal/drc plus, when the session was created from a core.Project, a
// delta-aware PEEC coupling tracker that re-extracts only the pairs
// touching the edited component. This is the paper's interactive adviser
// loop ("relevant constraints are controlled simultaneously" while the
// designer drags parts) made a long-lived server-side object.
package session

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/rules"
)

// Edit operations.
const (
	OpMove      = "move"
	OpRotate    = "rotate"
	OpSwapBoard = "swap_board"
	OpAddRule   = "add_rule"
	OpParam     = "param"
)

// Parameter names for OpParam.
const (
	ParamClearance     = "clearance"
	ParamEdgeClearance = "edge_clearance"
)

// Edit is one design change. All geometry is SI (meters, radians); the
// HTTP and CLI layers convert from millimeters/degrees.
type Edit struct {
	Op     string
	Ref    string    // move/rotate/swap_board target; add_rule first ref
	RefB   string    // add_rule second ref
	Center geom.Vec2 // move
	Rot    float64   // move/rotate
	Board  int       // swap_board target board
	PEMD   float64   // add_rule distance, meters
	Param  string    // param name
	Value  float64   // param value, meters
}

// Violation is the wire form of a drc.Violation (millimeters).
type Violation struct {
	Kind     string   `json:"kind"`
	Refs     []string `json:"refs"`
	Detail   string   `json:"detail"`
	AmountMM float64  `json:"amount_mm,omitempty"`
}

// CouplingChange reports one re-extracted PEEC coupling factor.
type CouplingChange struct {
	RefA  string  `json:"ref_a"`
	RefB  string  `json:"ref_b"`
	K     float64 `json:"k"`
	PrevK float64 `json:"prev_k"`
}

// Delta is the observable result of one edit (or undo/redo): the
// violation diff, the resulting design status, the incremental work done
// versus what a from-scratch check would have cost, and any re-extracted
// couplings. Deltas are what the SSE stream pushes.
type Delta struct {
	Seq              uint64           `json:"seq"`
	Op               string           `json:"op"`
	Ref              string           `json:"ref,omitempty"`
	Added            []Violation      `json:"added,omitempty"`
	Resolved         []Violation      `json:"resolved,omitempty"`
	Updated          []Violation      `json:"updated,omitempty"`
	Violations       int              `json:"violations"`
	Green            bool             `json:"green"`
	WorstEMDMarginMM *float64         `json:"worst_emd_margin_mm,omitempty"`
	ChecksEvaluated  int              `json:"checks_evaluated"`
	ChecksFull       int              `json:"checks_full"`
	Couplings        []CouplingChange `json:"couplings,omitempty"`

	// RecheckDur is the wall time of the incremental DRC recheck; it is
	// measured on every edit (traced or not) so the serving layer can feed
	// its phase histograms, but it is not part of the wire format.
	RecheckDur time.Duration `json:"-"`
}

// State is a snapshot of the session's status.
type State struct {
	ID               string   `json:"id"`
	Seq              uint64   `json:"seq"`
	Green            bool     `json:"green"`
	Violations       int      `json:"violations"`
	Checks           int      `json:"checks"`
	CanUndo          bool     `json:"can_undo"`
	CanRedo          bool     `json:"can_redo"`
	WorstEMDMarginMM *float64 `json:"worst_emd_margin_mm,omitempty"`
	Couplings        int      `json:"couplings"`
}

// Journal record ops: the three mutations a durable log must replay.
const (
	JournalApply = "apply"
	JournalUndo  = "undo"
	JournalRedo  = "redo"
)

// JournalRecord is the durable form of one acknowledged mutation: the
// operation, the sequence number of the resulting delta, and (for
// applies) the edit itself. Undo and redo need no payload — the journal
// has exact inverses, so replaying the ops in order reconstructs the
// session byte-for-byte.
type JournalRecord struct {
	Op   string
	Seq  uint64
	Edit Edit // JournalApply only
}

// JournalFunc persists one record. It is called with the session lock
// held, before the mutation is acknowledged: a non-nil error aborts the
// mutation (the design is rolled back) and is returned to the caller, so
// an acknowledged edit is always durable.
type JournalFunc func(JournalRecord) error

// ErrSealed rejects mutations on a session fenced for migration: a
// cluster takeover seals the source before fetching its journal, so no
// edit can be acknowledged after the fetch and then lost to the release.
// Detect with errors.Is.
var ErrSealed = errors.New("sealed for migration")

// applied is one journal entry: the forward edit plus everything needed
// to invert it.
type applied struct {
	edit      Edit
	prevComp  layout.Component // move/rotate/swap_board
	hadRule   bool             // add_rule: a rule for the pair existed
	prevRule  rules.Rule       // add_rule: the replaced rule
	prevParam float64          // param: the previous value
}

// Session owns one design under interactive editing. All methods are safe
// for concurrent use; edits serialize behind the session lock.
type Session struct {
	ID string

	mu      sync.Mutex
	d       *layout.Design
	idx     *drc.Index
	inc     *drc.Incremental
	coup    *couplingTracker
	seq     uint64
	journal []applied
	redo    []applied
	persist JournalFunc // nil: no durability

	subs    map[int]*subscriber
	nextSub int
	ring    []Delta
	closed  bool
	sealed  bool
}

// New creates a session owning a deep copy of the design.
func New(id string, d *layout.Design) *Session {
	own := d.Clone()
	idx := drc.NewIndex(own)
	return &Session{
		ID:   id,
		d:    own,
		idx:  idx,
		inc:  drc.NewIncremental(idx),
		subs: map[int]*subscriber{},
	}
}

// NewWithProject creates a session from a core.Project: the design is
// deep-copied and a coupling tracker maintains the PEEC coupling factors
// of the project's mapped pairs across edits.
func NewWithProject(id string, p *core.Project) (*Session, error) {
	s := New(id, p.Design)
	coup, err := newCouplingTracker(p, s.d)
	if err != nil {
		return nil, err
	}
	s.coup = coup
	return s, nil
}

// Seq returns the sequence number of the last applied delta.
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// State returns the current session status.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		ID:         s.ID,
		Seq:        s.seq,
		Violations: s.inc.ViolationCount(),
		Checks:     s.inc.FullChecks(),
		CanUndo:    len(s.journal) > 0,
		CanRedo:    len(s.redo) > 0,
	}
	st.Green = st.Violations == 0
	if m, ok := s.inc.WorstEMDMargin(); ok {
		mm := m * 1e3
		st.WorstEMDMarginMM = &mm
	}
	if s.coup != nil {
		st.Couplings = len(s.coup.k)
	}
	return st
}

// Report assembles the full DRC report of the current design state from
// the incremental caches (byte-identical to drc.Check on the design).
func (s *Session) Report() *drc.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc.Report()
}

// Component returns a copy of a component's current state.
func (s *Session) Component(ref string) (layout.Component, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.d.Find(ref)
	if c == nil {
		return layout.Component{}, false
	}
	return *c, true
}

// DesignSnapshot returns a deep copy of the current design.
func (s *Session) DesignSnapshot() *layout.Design {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Clone()
}

// Couplings returns a copy of the tracked coupling factors (nil when the
// session has no project).
func (s *Session) Couplings() map[[2]string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coup == nil {
		return nil
	}
	out := make(map[[2]string]float64, len(s.coup.k))
	for k, v := range s.coup.k {
		out[k] = v
	}
	return out
}

// Snapshot serialises the current design to the ASCII layout format. The
// journal is not part of a snapshot: a restored session starts with an
// empty history.
func (s *Session) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := layout.Write(&buf, s.d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SetJournal installs the durability hook called before every mutation
// is acknowledged (see JournalFunc). A nil fn disables journaling; the
// recovery path replays first and installs the hook after, so replayed
// records are not re-appended.
func (s *Session) SetJournal(fn JournalFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist = fn
}

// Seal fences the session for migration: every later Apply/Undo/Redo
// fails with ErrSealed. Seal acquires the session lock — the same lock
// every mutation journals under — so by the time it returns, any
// in-flight mutation has either fully journaled and been acknowledged
// (it is in the WAL an adopter fetches next) or has not started (it
// will be rejected). Reads keep working. Idempotent.
func (s *Session) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
}

// Unseal lifts the migration fence — the abort path of a takeover that
// sealed the source and then failed before adopting.
func (s *Session) Unseal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = false
}

// Sealed reports whether the session is fenced for migration.
func (s *Session) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// RestoreSeq fast-forwards the delta sequence counter to seq — the base
// sequence of the snapshot a recovered session was rebuilt from, so
// sequence numbers (and SSE event IDs) keep growing across a restart.
// The counter only moves forward.
func (s *Session) RestoreSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.seq {
		s.seq = seq
	}
}

// Checkpoint atomically serialises the current design, returns it with
// the current sequence number, and drops the undo/redo history. It is
// the WAL compaction barrier: the durable log is about to replace the
// journal prefix with this snapshot, and a snapshot restores with an
// empty history, so the live session must agree that edits before the
// barrier can no longer be undone.
func (s *Session) Checkpoint() ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := layout.Write(&buf, s.d); err != nil {
		return nil, 0, err
	}
	s.journal = nil
	s.redo = nil
	return buf.Bytes(), s.seq, nil
}

// Apply validates and applies one edit, recomputes the invalidated rule
// units and couplings, journals the inverse, and broadcasts the delta.
func (s *Session) Apply(e Edit) (*Delta, error) {
	return s.ApplyCtx(context.Background(), e)
}

// ApplyCtx is Apply with tracing: on a traced context a "session.edit"
// span wraps the whole edit and child spans cover the DRC recheck and any
// coupling re-extraction.
func (s *Session) ApplyCtx(ctx context.Context, e Edit) (*Delta, error) {
	ctx, sp := obs.Start(ctx, "session.edit")
	sp.Str("op", e.Op)
	sp.Str("ref", e.Ref)
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session: %s is closed", s.ID)
	}
	if s.sealed {
		return nil, fmt.Errorf("session: %s: %w", s.ID, ErrSealed)
	}
	rec, err := s.forward(e)
	if err != nil {
		return nil, err
	}
	if s.persist != nil {
		if err := s.persist(JournalRecord{Op: JournalApply, Seq: s.seq + 1, Edit: rec.edit}); err != nil {
			// The edit cannot be made durable: roll it back so the
			// in-memory state never runs ahead of the log.
			s.invert(rec)
			return nil, fmt.Errorf("session: journal: %w", err)
		}
	}
	s.journal = append(s.journal, rec)
	s.redo = nil
	return s.settle(ctx, e.Op, rec.edit)
}

// Undo reverts the most recent edit.
func (s *Session) Undo() (*Delta, error) {
	return s.UndoCtx(context.Background())
}

// UndoCtx is Undo with tracing (see ApplyCtx).
func (s *Session) UndoCtx(ctx context.Context) (*Delta, error) {
	ctx, sp := obs.Start(ctx, "session.edit")
	sp.Str("op", "undo")
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session: %s is closed", s.ID)
	}
	if s.sealed {
		return nil, fmt.Errorf("session: %s: %w", s.ID, ErrSealed)
	}
	if len(s.journal) == 0 {
		return nil, fmt.Errorf("session: nothing to undo")
	}
	if s.persist != nil {
		// Nothing is mutated yet, so a journal failure simply rejects.
		if err := s.persist(JournalRecord{Op: JournalUndo, Seq: s.seq + 1}); err != nil {
			return nil, fmt.Errorf("session: journal: %w", err)
		}
	}
	rec := s.journal[len(s.journal)-1]
	s.journal = s.journal[:len(s.journal)-1]
	s.invert(rec)
	s.redo = append(s.redo, rec)
	return s.settle(ctx, "undo", rec.edit)
}

// Redo re-applies the most recently undone edit.
func (s *Session) Redo() (*Delta, error) {
	return s.RedoCtx(context.Background())
}

// RedoCtx is Redo with tracing (see ApplyCtx).
func (s *Session) RedoCtx(ctx context.Context) (*Delta, error) {
	ctx, sp := obs.Start(ctx, "session.edit")
	sp.Str("op", "redo")
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session: %s is closed", s.ID)
	}
	if s.sealed {
		return nil, fmt.Errorf("session: %s: %w", s.ID, ErrSealed)
	}
	if len(s.redo) == 0 {
		return nil, fmt.Errorf("session: nothing to redo")
	}
	if s.persist != nil {
		if err := s.persist(JournalRecord{Op: JournalRedo, Seq: s.seq + 1}); err != nil {
			return nil, fmt.Errorf("session: journal: %w", err)
		}
	}
	rec := s.redo[len(s.redo)-1]
	s.redo = s.redo[:len(s.redo)-1]
	// Re-applying the stored edit cannot fail: it was valid before.
	rec2, err := s.forward(rec.edit)
	if err != nil {
		return nil, err
	}
	s.journal = append(s.journal, rec2)
	return s.settle(ctx, "redo", rec.edit)
}

// forward validates an edit, captures its inverse and mutates the design.
// The caller holds the lock.
func (s *Session) forward(e Edit) (applied, error) {
	rec := applied{edit: e}
	switch e.Op {
	case OpMove, OpRotate, OpSwapBoard:
		c := s.d.Find(e.Ref)
		if c == nil {
			return rec, fmt.Errorf("session: unknown component %q", e.Ref)
		}
		if c.Preplaced {
			return rec, fmt.Errorf("session: %q is preplaced and cannot move", e.Ref)
		}
		rec.prevComp = *c
		switch e.Op {
		case OpMove:
			c.Center, c.Rot, c.Placed = e.Center, e.Rot, true
		case OpRotate:
			if !c.Placed {
				return rec, fmt.Errorf("session: cannot rotate unplaced %q", e.Ref)
			}
			c.Rot = e.Rot
		case OpSwapBoard:
			if !c.Placed {
				return rec, fmt.Errorf("session: cannot swap unplaced %q", e.Ref)
			}
			if e.Board < 0 || e.Board >= s.d.Boards {
				return rec, fmt.Errorf("session: board %d out of range (design has %d)", e.Board, s.d.Boards)
			}
			c.Board = e.Board
		}
	case OpAddRule:
		if s.d.Find(e.Ref) == nil || s.d.Find(e.RefB) == nil {
			return rec, fmt.Errorf("session: rule references unknown component (%q, %q)", e.Ref, e.RefB)
		}
		if e.Ref == e.RefB {
			return rec, fmt.Errorf("session: rule needs two distinct components")
		}
		if e.PEMD < 0 {
			return rec, fmt.Errorf("session: negative PEMD")
		}
		if s.d.Rules == nil {
			s.d.Rules = rules.NewSet(nil)
		}
		if pemd, ok := s.d.Rules.Lookup(e.Ref, e.RefB); ok {
			rec.hadRule = true
			rec.prevRule = rules.Rule{RefA: e.Ref, RefB: e.RefB, PEMD: pemd}
		}
		s.d.Rules.Add(rules.Rule{RefA: e.Ref, RefB: e.RefB, PEMD: e.PEMD})
	case OpParam:
		switch e.Param {
		case ParamClearance:
			rec.prevParam = s.d.Clearance
			s.d.Clearance = e.Value
		case ParamEdgeClearance:
			rec.prevParam = s.d.EdgeClearance
			s.d.EdgeClearance = e.Value
		default:
			return rec, fmt.Errorf("session: unknown parameter %q", e.Param)
		}
		if e.Value < 0 {
			// Restore before failing so validation errors are side-effect free.
			if e.Param == ParamClearance {
				s.d.Clearance = rec.prevParam
			} else {
				s.d.EdgeClearance = rec.prevParam
			}
			return rec, fmt.Errorf("session: negative %s", e.Param)
		}
	default:
		return rec, fmt.Errorf("session: unknown op %q", e.Op)
	}
	return rec, nil
}

// invert restores the state captured in a journal entry. The caller holds
// the lock.
func (s *Session) invert(rec applied) {
	switch rec.edit.Op {
	case OpMove, OpRotate, OpSwapBoard:
		if c := s.d.Find(rec.edit.Ref); c != nil {
			*c = rec.prevComp
		}
	case OpAddRule:
		if rec.hadRule {
			s.d.Rules.Add(rec.prevRule)
		} else {
			s.d.Rules.Remove(rec.edit.Ref, rec.edit.RefB)
		}
	case OpParam:
		if rec.edit.Param == ParamClearance {
			s.d.Clearance = rec.prevParam
		} else {
			s.d.EdgeClearance = rec.prevParam
		}
	}
}

// scopeOf translates an edit into the DRC invalidation scope.
func scopeOf(e Edit) drc.Scope {
	switch e.Op {
	case OpMove, OpRotate, OpSwapBoard:
		return drc.Scope{Refs: []string{e.Ref}}
	case OpAddRule:
		return drc.Scope{RulesChanged: true}
	case OpParam:
		if e.Param == ParamClearance {
			return drc.Scope{AllClearance: true}
		}
		return drc.Scope{AllContainment: true}
	}
	return drc.Scope{}
}

// settle runs the incremental recheck and coupling update for an edit
// whose design mutation already happened, assembles the delta, journals
// it in the replay ring and broadcasts it. The caller holds the lock.
func (s *Session) settle(ctx context.Context, op string, e Edit) (*Delta, error) {
	_, rsp := obs.Start(ctx, "drc.recheck")
	t0 := time.Now()
	dd := s.inc.Recheck(scopeOf(e))
	recheckDur := time.Since(t0)
	rsp.Int("evals", int64(dd.Evals))
	rsp.End()
	s.seq++
	out := &Delta{
		Seq:             s.seq,
		Op:              op,
		Ref:             e.Ref,
		Added:           toWire(dd.Added),
		Resolved:        toWire(dd.Resolved),
		Updated:         toWire(dd.Updated),
		Violations:      s.inc.ViolationCount(),
		ChecksEvaluated: dd.Evals,
		ChecksFull:      s.inc.FullChecks(),
		RecheckDur:      recheckDur,
	}
	out.Green = out.Violations == 0
	if m, ok := s.inc.WorstEMDMargin(); ok {
		mm := m * 1e3
		out.WorstEMDMarginMM = &mm
	}
	if s.coup != nil {
		switch e.Op {
		case OpMove, OpRotate, OpSwapBoard:
			_, csp := obs.Start(ctx, "peec.recouple")
			changes, err := s.coup.recompute([]string{e.Ref})
			csp.Int("pairs", int64(len(changes)))
			csp.End()
			if err != nil {
				return nil, fmt.Errorf("session: coupling update: %w", err)
			}
			out.Couplings = changes
		}
	}
	s.broadcast(*out)
	return out, nil
}

func toWire(vs []drc.Violation) []Violation {
	if len(vs) == 0 {
		return nil
	}
	out := make([]Violation, len(vs))
	for i, v := range vs {
		out[i] = Violation{
			Kind:     string(v.Kind),
			Refs:     append([]string(nil), v.Refs...),
			Detail:   v.Detail,
			AmountMM: v.Amount * 1e3,
		}
	}
	return out
}
