package session

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

// fakeClock drives the manager's idle TTL deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestManager(ttl time.Duration, capacity int) (*Manager, *fakeClock) {
	m := NewManager(ttl, capacity)
	c := &fakeClock{t: time.Unix(1700000000, 0)}
	m.now = c.now
	return m, c
}

// TestEvictHookFiresOnTTLOnly: the hook is the durable layer's signal to
// drop a session's log, so it must fire for TTL eviction and ONLY for
// TTL eviction — explicit Delete and CloseAll handle their own cleanup.
func TestEvictHookFiresOnTTLOnly(t *testing.T) {
	t.Parallel()
	m, clock := newTestManager(time.Minute, 8)
	var evicted []string
	m.SetEvictHook(func(id string) { evicted = append(evicted, id) })

	d := workload.Synthetic(4, 3, 2, 0.1, 0.08)
	idle, err := m.Create(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := m.Create(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	deleted, err := m.Create(d, nil)
	if err != nil {
		t.Fatal(err)
	}

	if !m.Delete(deleted.ID) {
		t.Fatal("delete failed")
	}
	if len(evicted) != 0 {
		t.Fatalf("hook fired on explicit Delete: %v", evicted)
	}

	// Keep one session warm past the other's TTL.
	clock.advance(40 * time.Second)
	if _, ok := m.Get(fresh.ID); !ok {
		t.Fatal("fresh session gone early")
	}
	clock.advance(40 * time.Second) // idle is now 80s stale, fresh 40s
	if _, ok := m.Get(idle.ID); ok {
		t.Fatal("idle session survived its TTL")
	}
	if len(evicted) != 1 || evicted[0] != idle.ID {
		t.Fatalf("hook calls %v, want exactly [%s]", evicted, idle.ID)
	}
	if _, ok := m.Get(fresh.ID); !ok {
		t.Fatal("fresh session evicted alongside the idle one")
	}

	m.CloseAll()
	if len(evicted) != 1 {
		t.Fatalf("hook fired on CloseAll: %v", evicted)
	}
	if st := m.Stats(); st.Evicted != 1 {
		t.Fatalf("evicted counter %d, want 1", st.Evicted)
	}
}

// TestAdoptAdvancesIDCounter: recovered sessions keep their IDs, and new
// sessions created afterwards must never collide with them.
func TestAdoptAdvancesIDCounter(t *testing.T) {
	t.Parallel()
	m, _ := newTestManager(time.Hour, 8)
	d := workload.Synthetic(4, 3, 2, 0.1, 0.08)

	recovered := New("s000005", d)
	if err := m.Adopt(recovered); err != nil {
		t.Fatal(err)
	}
	if err := m.Adopt(New("s000005", d)); err == nil {
		t.Fatal("double adoption of the same ID accepted")
	}
	if got, ok := m.Get("s000005"); !ok || got != recovered {
		t.Fatal("adopted session not retrievable")
	}

	next, err := m.Create(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "s000006" {
		t.Fatalf("created ID %s after adopting s000005, want s000006", next.ID)
	}
}

// TestAdoptRespectsCapacity: recovery cannot blow past the session cap.
func TestAdoptRespectsCapacity(t *testing.T) {
	t.Parallel()
	m, _ := newTestManager(time.Hour, 2)
	d := workload.Synthetic(4, 3, 2, 0.1, 0.08)
	for i := 0; i < 2; i++ {
		if err := m.Adopt(New(fmt.Sprintf("s%06d", i+1), d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Adopt(New("s000003", d)); err == nil {
		t.Fatal("adoption past the capacity accepted")
	}
}
