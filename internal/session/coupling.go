package session

import (
	"sort"

	"repro/internal/core"
	"repro/internal/layout"
)

// couplingTracker maintains the PEEC coupling factors of a project's
// mapped component pairs across edits. After an edit to one component,
// only the pairs containing that component are re-extracted; everything
// else keeps its cached value. Because coupling extraction is a pure
// function of the pair's geometry (and the engine memo cache is keyed on
// exactly that), the tracked map always equals what a from-scratch
// ExtractCouplings over all placed pairs would return.
type couplingTracker struct {
	proj    *core.Project
	pairsOf map[string][][2]string // ref -> mapped pairs containing it
	k       map[[2]string]float64  // current factors, both-placed pairs only
}

// newCouplingTracker binds a shallow copy of the project to the session's
// private design and extracts the initial coupling set.
func newCouplingTracker(p *core.Project, d *layout.Design) (*couplingTracker, error) {
	proj := *p
	proj.Design = d
	t := &couplingTracker{
		proj:    &proj,
		pairsOf: map[string][][2]string{},
		k:       map[[2]string]float64{},
	}
	all := proj.AllPairs()
	for _, pair := range all {
		t.pairsOf[pair[0]] = append(t.pairsOf[pair[0]], pair)
		t.pairsOf[pair[1]] = append(t.pairsOf[pair[1]], pair)
	}
	var live [][2]string
	for _, pair := range all {
		if t.bothPlaced(pair) {
			live = append(live, pair)
		}
	}
	ks, err := proj.ExtractCouplings(live)
	if err != nil {
		return nil, err
	}
	for pair, k := range ks {
		t.k[pair] = k
	}
	return t, nil
}

func (t *couplingTracker) bothPlaced(pair [2]string) bool {
	a := t.proj.Design.Find(pair[0])
	b := t.proj.Design.Find(pair[1])
	return a != nil && b != nil && a.Placed && b.Placed
}

// recompute re-extracts the pairs containing any of the given refs and
// returns the changes (sorted by pair). Pairs whose endpoints are no
// longer both placed are dropped from the tracked set.
func (t *couplingTracker) recompute(refs []string) ([]CouplingChange, error) {
	seen := map[[2]string]bool{}
	var stale, live [][2]string
	for _, ref := range refs {
		for _, pair := range t.pairsOf[ref] {
			if seen[pair] {
				continue
			}
			seen[pair] = true
			if t.bothPlaced(pair) {
				live = append(live, pair)
			} else {
				stale = append(stale, pair)
			}
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i][0] != live[j][0] {
			return live[i][0] < live[j][0]
		}
		return live[i][1] < live[j][1]
	})
	var changes []CouplingChange
	for _, pair := range stale {
		if prev, ok := t.k[pair]; ok {
			delete(t.k, pair)
			changes = append(changes, CouplingChange{RefA: pair[0], RefB: pair[1], PrevK: prev})
		}
	}
	if len(live) > 0 {
		ks, err := t.proj.ExtractCouplings(live)
		if err != nil {
			return nil, err
		}
		for _, pair := range live {
			nk := ks[pair]
			prev, had := t.k[pair]
			t.k[pair] = nk
			if !had || prev != nk {
				changes = append(changes, CouplingChange{RefA: pair[0], RefB: pair[1], K: nk, PrevK: prev})
			}
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].RefA != changes[j].RefA {
			return changes[i].RefA < changes[j].RefA
		}
		return changes[i].RefB < changes[j].RefB
	})
	return changes, nil
}
