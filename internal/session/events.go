package session

// The event fan-out: every applied delta is kept in a bounded replay ring
// and pushed to all live subscribers. A subscriber that cannot keep up
// (its channel buffer fills) is dropped by closing its channel — the SSE
// layer turns that into a terminated stream and the client reconnects
// with Last-Event-ID, replaying what the ring still holds.

// ringCap bounds the replay buffer; reconnecting clients can resume from
// at most this many deltas back.
const ringCap = 256

// subChanCap is each subscriber's buffer; a consumer this far behind a
// burst of edits is considered dead.
const subChanCap = 64

type subscriber struct {
	ch   chan Delta
	dead bool
}

// Subscribe registers for deltas with Seq > afterSeq. Deltas still in the
// replay ring are delivered first. The returned cancel function must be
// called when done; the channel is closed on cancel, session close, or
// when the subscriber falls too far behind.
func (s *Session) Subscribe(afterSeq uint64) (<-chan Delta, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var replay []Delta
	for _, d := range s.ring {
		if d.Seq > afterSeq {
			replay = append(replay, d)
		}
	}
	sub := &subscriber{ch: make(chan Delta, subChanCap+len(replay))}
	for _, d := range replay {
		sub.ch <- d
	}
	if s.closed {
		sub.dead = true
		close(sub.ch)
		return sub.ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = sub
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if cur, ok := s.subs[id]; ok && cur == sub {
			delete(s.subs, id)
			if !sub.dead {
				sub.dead = true
				close(sub.ch)
			}
		}
	}
	return sub.ch, cancel
}

// broadcast appends the delta to the ring and fans it out. The caller
// holds the lock.
func (s *Session) broadcast(d Delta) {
	s.ring = append(s.ring, d)
	if len(s.ring) > ringCap {
		s.ring = s.ring[len(s.ring)-ringCap:]
	}
	for id, sub := range s.subs {
		select {
		case sub.ch <- d:
		default:
			// Subscriber fell behind: drop it.
			delete(s.subs, id)
			sub.dead = true
			close(sub.ch)
		}
	}
}

// Close terminates the session: all subscriber channels are closed and
// further edits are rejected.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, sub := range s.subs {
		delete(s.subs, id)
		if !sub.dead {
			sub.dead = true
			close(sub.ch)
		}
	}
}
