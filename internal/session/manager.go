package session

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
)

// Manager defaults.
const (
	DefaultTTL = 30 * time.Minute
	DefaultCap = 64
)

// Manager owns the live sessions of a server: creation with a capacity
// cap, lookup that refreshes the idle clock, and TTL eviction of sessions
// nobody touched. Eviction is piggybacked on every mutating call, so no
// background goroutine is needed.
type Manager struct {
	ttl time.Duration
	cap int
	now func() time.Time

	mu       sync.Mutex
	sessions map[string]*entry
	seq      uint64
	created  uint64
	evicted  uint64
	onEvict  func(id string) // TTL eviction notification (not Delete/CloseAll)
}

type entry struct {
	s        *Session
	lastUsed time.Time
}

// ManagerStats is a snapshot of the manager's counters.
type ManagerStats struct {
	Active  int
	Created uint64
	Evicted uint64
}

// NewManager builds a manager; ttl <= 0 and cap <= 0 select the defaults.
func NewManager(ttl time.Duration, capacity int) *Manager {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Manager{
		ttl:      ttl,
		cap:      capacity,
		now:      time.Now,
		sessions: map[string]*entry{},
	}
}

// SetEvictHook registers fn, called with the ID of every session the
// idle TTL evicts (but not ones explicitly Deleted or closed by
// CloseAll). The serving layer uses it to delete the session's durable
// log — an evicted session must not resurrect on restart. fn runs under
// the manager lock and must not call back into the manager.
func (m *Manager) SetEvictHook(fn func(id string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onEvict = fn
}

// sweepLocked evicts sessions idle longer than the TTL.
func (m *Manager) sweepLocked(now time.Time) {
	for id, e := range m.sessions {
		if now.Sub(e.lastUsed) > m.ttl {
			delete(m.sessions, id)
			m.evicted++
			e.s.Close()
			if m.onEvict != nil {
				m.onEvict(id)
			}
		}
	}
}

// Create makes a new session owning a copy of the design. When proj is
// non-nil its design is ignored in favour of d (pass proj.Design as d for
// the usual case) and coupling tracking is enabled.
func (m *Manager) Create(d *layout.Design, proj *core.Project) (*Session, error) {
	m.mu.Lock()
	now := m.now()
	m.sweepLocked(now)
	if len(m.sessions) >= m.cap {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: capacity reached (%d live sessions)", m.cap)
	}
	m.seq++
	id := fmt.Sprintf("s%06d", m.seq)
	m.mu.Unlock()

	// Build outside the lock: project-backed sessions run PEEC extraction.
	var (
		s   *Session
		err error
	)
	if proj != nil {
		p := *proj
		p.Design = d
		s, err = NewWithProject(id, &p)
		if err != nil {
			return nil, err
		}
	} else {
		s = New(id, d)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sessions) >= m.cap {
		s.Close()
		return nil, fmt.Errorf("session: capacity reached (%d live sessions)", m.cap)
	}
	m.sessions[id] = &entry{s: s, lastUsed: m.now()}
	m.created++
	return s, nil
}

// CreateWithID is Create for a caller that supplies the session ID — the
// cluster router mints IDs itself so a session hashes to the same ring
// owner on every routing decision. The ID must not collide with the
// manager's own "s%06d" namespace (router IDs carry a distinct prefix);
// an ID that is already live is an error.
func (m *Manager) CreateWithID(id string, d *layout.Design, proj *core.Project) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("session: empty id")
	}
	var n uint64
	if _, err := fmt.Sscanf(id, "s%d", &n); err == nil {
		return nil, fmt.Errorf("session: id %q collides with the local namespace", id)
	}
	m.mu.Lock()
	now := m.now()
	m.sweepLocked(now)
	if _, ok := m.sessions[id]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: %s already live", id)
	}
	if len(m.sessions) >= m.cap {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: capacity reached (%d live sessions)", m.cap)
	}
	m.mu.Unlock()

	var (
		s   *Session
		err error
	)
	if proj != nil {
		p := *proj
		p.Design = d
		s, err = NewWithProject(id, &p)
		if err != nil {
			return nil, err
		}
	} else {
		s = New(id, d)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; ok {
		s.Close()
		return nil, fmt.Errorf("session: %s already live", id)
	}
	if len(m.sessions) >= m.cap {
		s.Close()
		return nil, fmt.Errorf("session: capacity reached (%d live sessions)", m.cap)
	}
	m.sessions[id] = &entry{s: s, lastUsed: m.now()}
	m.created++
	return s, nil
}

// Adopt inserts a recovered session under its existing ID and advances
// the ID counter past it, so freshly created sessions never collide with
// recovered ones. It counts against the capacity like Create.
func (m *Manager) Adopt(s *Session) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[s.ID]; ok {
		return fmt.Errorf("session: %s already live", s.ID)
	}
	if len(m.sessions) >= m.cap {
		return fmt.Errorf("session: capacity reached (%d live sessions)", m.cap)
	}
	var n uint64
	if _, err := fmt.Sscanf(s.ID, "s%d", &n); err == nil && n > m.seq {
		m.seq = n
	}
	m.sessions[s.ID] = &entry{s: s, lastUsed: m.now()}
	m.created++
	return nil
}

// Get returns a live session and refreshes its idle clock.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.sweepLocked(now)
	e, ok := m.sessions[id]
	if !ok {
		return nil, false
	}
	e.lastUsed = now
	return e.s, true
}

// Delete closes and removes a session.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	e, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if ok {
		e.s.Close()
	}
	return ok
}

// List returns the live sessions sorted by ID.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.now())
	out := make([]*Session, 0, len(m.sessions))
	for _, e := range m.sessions {
		out = append(out, e.s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.now())
	return len(m.sessions)
}

// Stats returns the manager counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ManagerStats{Active: len(m.sessions), Created: m.created, Evicted: m.evicted}
}

// CloseAll closes every session (server shutdown).
func (m *Manager) CloseAll() {
	m.mu.Lock()
	es := make([]*entry, 0, len(m.sessions))
	for id, e := range m.sessions {
		es = append(es, e)
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	for _, e := range es {
		e.s.Close()
	}
}
