package mna

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/netlist"
)

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func solveAt(t *testing.T, c *netlist.Circuit, f float64) *Solution {
	t.Helper()
	a, err := NewAnalyzer(c)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	sol, err := a.Solve(f)
	if err != nil {
		t.Fatalf("Solve(%g): %v", f, err)
	}
	return sol
}

func TestVoltageDivider(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "in", "mid", 3)
	c.AddR("R2", "mid", "0", 1)
	sol := solveAt(t, c, 1000)
	got := sol.NodeVoltage("mid")
	if relErr(cmplx.Abs(got), 0.25) > 1e-9 {
		t.Errorf("divider = %v, want 0.25", got)
	}
	// Source current = -1/4 A (flows out of + terminal through circuit).
	i := sol.BranchCurrent("V1")
	if relErr(real(i), -0.25) > 1e-9 {
		t.Errorf("source current = %v", i)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddI("I1", "0", "n", netlist.Source{ACMag: 2})
	c.AddR("R1", "n", "0", 5)
	sol := solveAt(t, c, 100)
	if got := cmplx.Abs(sol.NodeVoltage("n")); relErr(got, 10) > 1e-6 {
		t.Errorf("V = %v, want 10", got)
	}
}

func TestRCLowPass(t *testing.T) {
	t.Parallel()
	R, C := 1000.0, 100e-9
	fc := 1 / (2 * math.Pi * R * C)
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "in", "out", R)
	c.AddC("C1", "out", "0", C)
	sol := solveAt(t, c, fc)
	v := sol.NodeVoltage("out")
	if relErr(cmplx.Abs(v), 1/math.Sqrt2) > 1e-6 {
		t.Errorf("|H(fc)| = %v, want 0.707", cmplx.Abs(v))
	}
	if relErr(cmplx.Phase(v), -math.Pi/4) > 1e-6 {
		t.Errorf("phase = %v, want -45°", cmplx.Phase(v))
	}
	// Deep stop band: -40 dB/decade is RC's -20, check 100·fc gives ≈ 1/100.
	sol = solveAt(t, c, 100*fc)
	if got := cmplx.Abs(sol.NodeVoltage("out")); relErr(got, 0.01) > 0.01 {
		t.Errorf("|H(100·fc)| = %v", got)
	}
}

func TestSeriesRLCResonance(t *testing.T) {
	t.Parallel()
	R, L, C := 10.0, 10e-6, 100e-9
	f0 := 1 / (2 * math.Pi * math.Sqrt(L*C))
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "in", "a", R)
	c.AddL("L1", "a", "b", L)
	c.AddC("C1", "b", "0", C)
	sol := solveAt(t, c, f0)
	// At resonance the reactances cancel: |I| = V/R.
	i := sol.BranchCurrent("L1")
	if relErr(cmplx.Abs(i), 1/R) > 1e-6 {
		t.Errorf("|I(f0)| = %v, want %v", cmplx.Abs(i), 1/R)
	}
	// Off resonance the current drops.
	sol2 := solveAt(t, c, 10*f0)
	if cmplx.Abs(sol2.BranchCurrent("L1")) > 0.2*cmplx.Abs(i) {
		t.Error("current did not drop off resonance")
	}
}

func TestInductorShortsAtDC(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{DC: 10})
	c.AddR("R1", "in", "a", 100)
	c.AddL("L1", "a", "out", 1e-3)
	c.AddR("R2", "out", "0", 100)
	sol := solveAt(t, c, 0)
	va, vout := sol.NodeVoltage("a"), sol.NodeVoltage("out")
	if cmplx.Abs(va-vout) > 1e-9 {
		t.Errorf("inductor drop at DC = %v", va-vout)
	}
	if relErr(real(vout), 5) > 1e-9 {
		t.Errorf("Vout = %v, want 5", vout)
	}
}

func TestCapacitorOpensAtDC(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{DC: 10})
	c.AddR("R1", "in", "out", 1000)
	c.AddC("C1", "out", "0", 1e-6)
	sol := solveAt(t, c, 0)
	if relErr(real(sol.NodeVoltage("out")), 10) > 1e-6 {
		t.Errorf("Vout = %v, want 10 (no DC path)", sol.NodeVoltage("out"))
	}
}

func TestTransformerCoupling(t *testing.T) {
	t.Parallel()
	// Open-circuit secondary: V2/V1 = k·sqrt(L2/L1).
	L1, L2, k := 1e-3, 4e-3, 0.95
	c := &netlist.Circuit{}
	c.AddV("V1", "p", "0", netlist.Source{ACMag: 1})
	c.AddL("Lp", "p", "0", L1)
	c.AddL("Ls", "s", "0", L2)
	c.AddR("Rs", "s", "0", 1e9) // near-open load keeps node s referenced
	c.AddK("K1", "Lp", "Ls", k)
	sol := solveAt(t, c, 10e3)
	want := k * math.Sqrt(L2/L1)
	got := cmplx.Abs(sol.NodeVoltage("s"))
	if relErr(got, want) > 1e-3 {
		t.Errorf("V2 = %v, want %v", got, want)
	}
}

func TestCouplingSignConvention(t *testing.T) {
	t.Parallel()
	// Reversing the coupling sign flips the secondary voltage phase.
	mk := func(k float64) complex128 {
		c := &netlist.Circuit{}
		c.AddV("V1", "p", "0", netlist.Source{ACMag: 1})
		c.AddL("Lp", "p", "0", 1e-3)
		c.AddL("Ls", "s", "0", 1e-3)
		c.AddR("Rs", "s", "0", 1e9)
		c.AddK("K1", "Lp", "Ls", k)
		return solveAt(t, c, 1e4).NodeVoltage("s")
	}
	vp, vn := mk(0.5), mk(-0.5)
	if cmplx.Abs(vp+vn) > 1e-9 {
		t.Errorf("sign flip: %v vs %v", vp, vn)
	}
}

func TestPiFilterCouplingDegradesAttenuation(t *testing.T) {
	t.Parallel()
	// The paper's core circuit effect: magnetic coupling between the two
	// inductively-behaving capacitors (via their ESLs) bypasses the π
	// filter at high frequency and degrades attenuation.
	build := func(k float64) *netlist.Circuit {
		c := &netlist.Circuit{}
		c.AddI("Inoise", "0", "in", netlist.Source{ACMag: 1})
		c.AddR("Rsrc", "in", "0", 50)
		// Shunt cap 1 with ESL.
		c.AddC("C1", "in", "x1", 1e-6)
		c.AddL("Lesl1", "x1", "0", 20e-9)
		// Series choke.
		c.AddL("Lf", "in", "out", 100e-6)
		// Shunt cap 2 with ESL.
		c.AddC("C2", "out", "x2", 1e-6)
		c.AddL("Lesl2", "x2", "0", 20e-9)
		c.AddR("Rload", "out", "0", 50)
		if k != 0 {
			c.AddK("K12", "Lesl1", "Lesl2", k)
		}
		return c
	}
	f := 30e6 // deep in the stop band
	v0 := cmplx.Abs(solveAt(t, build(0), f).NodeVoltage("out"))
	v1 := cmplx.Abs(solveAt(t, build(0.1), f).NodeVoltage("out"))
	if v1 < 3*v0 {
		t.Errorf("k=0.1 should severely degrade the π filter: %v vs %v", v1, v0)
	}
}

func TestSwitchAndDiodeACStamps(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
	c.AddSwitch("S1", "in", "a", 1, 1e9, netlist.Schedule{Period: 1, OnTime: 0.5})
	c.AddR("R1", "a", "0", 1)
	c.AddDiode("D1", "a", "b", 0.01, 1e6)
	c.AddR("R2", "b", "0", 1e3)
	sol := solveAt(t, c, 1e3)
	// Switch acts as 1 Ω: divider gives ≈ 0.5 at node a.
	if got := cmplx.Abs(sol.NodeVoltage("a")); relErr(got, 0.5) > 1e-3 {
		t.Errorf("V(a) = %v", got)
	}
	// Diode blocks (1 MΩ vs 1 kΩ): node b nearly 0.
	if got := cmplx.Abs(sol.NodeVoltage("b")); got > 1e-3 {
		t.Errorf("V(b) = %v, want ≈ 0", got)
	}
}

func TestSingularCircuitError(t *testing.T) {
	t.Parallel()
	// Two ideal voltage sources with conflicting values in parallel.
	c := &netlist.Circuit{}
	c.AddV("V1", "n", "0", netlist.Source{ACMag: 1})
	c.AddV("V2", "n", "0", netlist.Source{ACMag: 2})
	a, err := NewAnalyzer(c)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	if _, err := a.Solve(1e3); err == nil {
		t.Error("parallel conflicting V sources should be singular")
	}
}

func TestInvalidFrequency(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "n", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "n", "0", 1)
	a, _ := NewAnalyzer(c)
	for _, f := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := a.Solve(f); err == nil {
			t.Errorf("Solve(%v) should fail", f)
		}
	}
}

func TestUnknownProbesReturnNaN(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "n", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "n", "0", 1)
	sol := solveAt(t, c, 100)
	if !cmplx.IsNaN(sol.NodeVoltage("nope")) {
		t.Error("unknown node must be NaN")
	}
	if !cmplx.IsNaN(sol.BranchCurrent("R1")) {
		t.Error("non-branch element must be NaN")
	}
	if sol.NodeVoltage("0") != 0 {
		t.Error("ground must be 0")
	}
}

func TestSweepNode(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "in", "out", 1000)
	c.AddC("C1", "out", "0", 100e-9)
	a, _ := NewAnalyzer(c)
	freqs := []float64{100, 1e3, 1e4, 1e5}
	vs, err := a.SweepNode(freqs, "out")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vs); i++ {
		if cmplx.Abs(vs[i]) >= cmplx.Abs(vs[i-1]) {
			t.Errorf("low-pass magnitude not decreasing at %v Hz", freqs[i])
		}
	}
}

func TestSuperposition(t *testing.T) {
	t.Parallel()
	// Linear circuit: response to two sources = sum of individual responses.
	build := func(a1, a2 float64) *netlist.Circuit {
		c := &netlist.Circuit{}
		c.AddV("V1", "x", "0", netlist.Source{ACMag: a1})
		c.AddR("R1", "x", "out", 10)
		c.AddI("I2", "0", "out", netlist.Source{ACMag: a2})
		c.AddR("R2", "out", "0", 20)
		return c
	}
	vBoth := solveAt(t, build(1, 1), 50).NodeVoltage("out")
	vV := solveAt(t, build(1, 0), 50).NodeVoltage("out")
	vI := solveAt(t, build(0, 1), 50).NodeVoltage("out")
	if cmplx.Abs(vBoth-(vV+vI)) > 1e-9 {
		t.Errorf("superposition: %v vs %v + %v", vBoth, vV, vI)
	}
}
