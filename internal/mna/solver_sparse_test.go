package mna

import (
	"errors"
	"fmt"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/netlist"
)

// ladderCircuit builds an RLC ladder with stages series-L/R sections and
// shunt C at every intermediate node — the canonical sparse MNA shape
// (tridiagonal-ish plus branch rows).
func ladderCircuit(stages int) *netlist.Circuit {
	c := &netlist.Circuit{}
	c.AddV("Vin", "n0", "0", netlist.Source{ACMag: 1})
	for s := 0; s < stages; s++ {
		a, b := fmt.Sprintf("n%d", s), fmt.Sprintf("n%d", s+1)
		mid := fmt.Sprintf("m%d", s)
		c.AddL(fmt.Sprintf("L%d", s), a, mid, 1e-6*(1+0.01*float64(s)))
		c.AddR(fmt.Sprintf("R%d", s), mid, b, 0.1+0.001*float64(s))
		c.AddC(fmt.Sprintf("C%d", s), b, "0", 1e-9*(1+0.02*float64(s)))
	}
	c.AddR("Rload", fmt.Sprintf("n%d", stages), "0", 50)
	// A few couplings between neighbouring inductors so group-2 mutual
	// stamps are exercised on the sparse path too.
	for s := 0; s+1 < stages && s < 6; s += 2 {
		c.AddK(fmt.Sprintf("K%d", s), fmt.Sprintf("L%d", s), fmt.Sprintf("L%d", s+1), 0.15)
	}
	return c
}

func TestSolverSelection(t *testing.T) {
	small, err := NewAnalyzer(ladderCircuit(4))
	if err != nil {
		t.Fatal(err)
	}
	// 4 stages → ~13 unknowns: far below the auto crossover.
	if got := small.SolverKind(); got != "dense" {
		t.Errorf("small system auto-selected %q, want dense", got)
	}
	small.SetSolver(linalg.ModeSparse)
	if got := small.SolverKind(); got != "sparse" {
		t.Errorf("forced sparse reported %q", got)
	}
	small.SetSolver(linalg.ModeDense)
	if got := small.SolverKind(); got != "dense" {
		t.Errorf("forced dense reported %q", got)
	}

	big, err := NewAnalyzer(ladderCircuit(80)) // ~240 unknowns, very sparse
	if err != nil {
		t.Fatal(err)
	}
	if big.n < linalg.SparseAutoMinN {
		t.Fatalf("fixture too small for the auto crossover: n=%d", big.n)
	}
	if got := big.SolverKind(); got != "sparse" {
		t.Errorf("large sparse system auto-selected %q, want sparse", got)
	}
	big.SetSolver(linalg.ModeDense)
	if got := big.SolverKind(); got != "dense" {
		t.Errorf("forced dense on large system reported %q", got)
	}
}

func TestProcessDefaultSolverHonored(t *testing.T) {
	prev := linalg.SetDefaultSolver(linalg.ModeSparse)
	defer linalg.SetDefaultSolver(prev)
	a, err := NewAnalyzer(ladderCircuit(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.SolverKind(); got != "sparse" {
		t.Errorf("process-wide sparse default ignored: got %q", got)
	}
	a.SetSolver(linalg.ModeDense) // per-analyzer override beats the global
	if got := a.SolverKind(); got != "dense" {
		t.Errorf("per-analyzer dense override ignored: got %q", got)
	}
}

// sweepBoth runs the same sweep through forced-dense and forced-sparse
// analyzers of the same circuit and returns both results.
func sweepBoth(t *testing.T, c *netlist.Circuit, freqs []float64, node string) (xd, xs []complex128) {
	t.Helper()
	ad, err := NewAnalyzer(c)
	if err != nil {
		t.Fatal(err)
	}
	ad.SetSolver(linalg.ModeDense)
	as, err := NewAnalyzer(c)
	if err != nil {
		t.Fatal(err)
	}
	as.SetSolver(linalg.ModeSparse)
	xd, err = ad.SweepNode(freqs, node)
	if err != nil {
		t.Fatalf("dense sweep: %v", err)
	}
	xs, err = as.SweepNode(freqs, node)
	if err != nil {
		t.Fatalf("sparse sweep: %v", err)
	}
	return xd, xs
}

func TestSparseSweepMatchesDense(t *testing.T) {
	c := ladderCircuit(50)
	freqs := make([]float64, 40)
	for i := range freqs {
		freqs[i] = 1e3 * float64(1+i*i)
	}
	freqs[0] = 0 // DC point included
	xd, xs := sweepBoth(t, c, freqs, "n25")
	for i := range xd {
		scale := cmplx.Abs(xd[i])
		if scale < 1e-30 {
			scale = 1e-30
		}
		if d := cmplx.Abs(xd[i]-xs[i]) / scale; d > 1e-8 {
			t.Fatalf("f=%g: dense %v sparse %v (rel %g)", freqs[i], xd[i], xs[i], d)
		}
	}
}

func TestSparseProbeCouplingMatchesDense(t *testing.T) {
	c := ladderCircuit(30)
	ad, _ := NewAnalyzer(c)
	ad.SetSolver(linalg.ModeDense)
	as, _ := NewAnalyzer(c)
	as.SetSolver(linalg.ModeSparse)

	check := func(stage string) {
		t.Helper()
		const f = 5e5
		sd, err := ad.Solve(f)
		if err != nil {
			t.Fatalf("%s dense: %v", stage, err)
		}
		vd := sd.NodeVoltage("n15")
		ss, err := as.Solve(f)
		if err != nil {
			t.Fatalf("%s sparse: %v", stage, err)
		}
		vs := ss.NodeVoltage("n15")
		if d := cmplx.Abs(vd - vs); d > 1e-8*cmplx.Abs(vd) {
			t.Fatalf("%s: dense %v sparse %v", stage, vd, vs)
		}
	}

	check("baseline")
	// L10/L20 are uncoupled: the probe appends new stamp cells, which on
	// the sparse side forces a pattern rebuild.
	for _, a := range []*Analyzer{ad, as} {
		if err := a.SetProbeCoupling("L10", "L20", 0.3); err != nil {
			t.Fatal(err)
		}
	}
	check("probe-appended")
	for _, a := range []*Analyzer{ad, as} {
		a.ClearProbeCoupling()
	}
	check("probe-cleared")
	// L0/L1 already carry a K: the probe overwrites in place (no rebuild).
	for _, a := range []*Analyzer{ad, as} {
		if err := a.SetProbeCoupling("L0", "L1", 0.9); err != nil {
			t.Fatal(err)
		}
	}
	check("probe-overwritten")
	for _, a := range []*Analyzer{ad, as} {
		a.ClearProbeCoupling()
	}
	check("restored")
}

// TestSparseSingularParityWithContext builds a singular system (two
// ideal voltage sources in parallel between the same nodes) and checks
// that both backends surface the typed linalg.ErrSingular wrapped with
// the f= frequency context.
func TestSparseSingularParityWithContext(t *testing.T) {
	c := &netlist.Circuit{}
	c.AddV("V1", "a", "0", netlist.Source{ACMag: 1})
	c.AddV("V2", "a", "0", netlist.Source{ACMag: 2})
	c.AddR("R1", "a", "0", 10)
	for _, mode := range []linalg.SolverMode{linalg.ModeDense, linalg.ModeSparse} {
		a, err := NewAnalyzer(c)
		if err != nil {
			t.Fatal(err)
		}
		a.SetSolver(mode)
		_, err = a.Solve(1e6)
		if !errors.Is(err, linalg.ErrSingular) {
			t.Fatalf("%v: want ErrSingular, got %v", mode, err)
		}
		if !strings.Contains(err.Error(), "f=1e+06") {
			t.Fatalf("%v: error lacks frequency context: %v", mode, err)
		}
	}
}

// kMeshCircuit builds a 2-D grid of filter stages with K coupling
// between every pair of inductors within a neighbour radius — the MNA
// shape a densely-coupled board produces. Its stamp pattern passes the
// nnz density gate, but mutual-inductance cliques fill in heavily under
// elimination, so the fill-aware half of the auto heuristic must send
// it back to the dense backend (measured: sparse is ~2× slower than
// dense on this system, see linalg.sparseFlopPenalty).
func kMeshCircuit(stages, cols int) *netlist.Circuit {
	c := &netlist.Circuit{}
	c.AddV("Vin", "n0", "0", netlist.Source{ACMag: 1})
	prev := "n0"
	for s := 0; s < stages; s++ {
		node := fmt.Sprintf("n%d", s+1)
		c.AddL(fmt.Sprintf("L%d", s), prev, node, 1e-6)
		mid1, mid2 := node+"_a", node+"_b"
		c.AddC(fmt.Sprintf("Cc%d", s), node, mid1, 1e-6)
		c.AddR(fmt.Sprintf("Rc%d", s), mid1, mid2, 0.05)
		c.AddL(fmt.Sprintf("Lc%d", s), mid2, "0", 5e-9)
		prev = node
	}
	c.AddR("RL", prev, "0", 4)
	for s := 0; s < stages; s++ {
		rs, cs := s/cols, s%cols
		for u := s + 1; u < stages; u++ {
			ru, cu := u/cols, u%cols
			dx, dy := float64(cs-cu)*0.02, float64(rs-ru)*0.032
			if dx*dx+dy*dy <= 0.05*0.05 {
				c.AddK(fmt.Sprintf("Ka%d_%d", s, u), fmt.Sprintf("L%d", s), fmt.Sprintf("L%d", u), 1e-3)
				c.AddK(fmt.Sprintf("Kb%d_%d", s, u), fmt.Sprintf("L%d", s), fmt.Sprintf("Lc%d", u), 1e-3)
				c.AddK(fmt.Sprintf("Kc%d_%d", s, u), fmt.Sprintf("Lc%d", s), fmt.Sprintf("Lc%d", u), 1e-3)
			}
		}
	}
	return c
}

func TestSolverFillFallback(t *testing.T) {
	a, err := NewAnalyzer(kMeshCircuit(357, 19))
	if err != nil {
		t.Fatal(err)
	}
	// The density gate alone would pick sparse for this system…
	nnz := len(a.gPlan) + len(a.bPlan)
	if !linalg.ChooseSparse(linalg.ModeAuto, a.n, nnz) {
		t.Fatalf("fixture no longer passes the density gate: n=%d nnz=%d", a.n, nnz)
	}
	// …but the fill-aware refinement must veto it.
	if got := a.SolverKind(); got != "dense" {
		t.Errorf("fill-heavy K-mesh auto-selected %q, want dense", got)
	}
	a.SetSolver(linalg.ModeSparse)
	if got := a.SolverKind(); got != "sparse" {
		t.Errorf("forced sparse reported %q", got)
	}
	// The forced-sparse path must still produce the dense answer.
	a.SetSolver(linalg.ModeDense)
	vd, err := a.Solve(1e6)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSolver(linalg.ModeSparse)
	vs, err := a.Solve(1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vd.x {
		if d := cmplx.Abs(vd.x[i] - vs.x[i]); d > 1e-9*(1+cmplx.Abs(vd.x[i])) {
			t.Fatalf("unknown %d: dense %v vs sparse %v", i, vd.x[i], vs.x[i])
		}
	}
}
