package mna

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/netlist"
)

// naiveSolveAt replicates the pre-plan direct netlist walk: assemble a
// fresh dense matrix at frequency f and solve it. It is the reference the
// compiled stamp plans must reproduce.
func naiveSolveAt(a *Analyzer, f float64) ([]complex128, error) {
	nn := len(a.nodes)
	omega := 2 * math.Pi * f
	m := linalg.NewComplex(a.n)
	rhs := make([]complex128, a.n)
	for i := 0; i < nn; i++ {
		m.Add(i, i, complex(Gmin, 0))
	}
	stamp := func(n1, n2 int, y complex128) {
		if n1 >= 0 {
			m.Add(n1, n1, y)
		}
		if n2 >= 0 {
			m.Add(n2, n2, y)
		}
		if n1 >= 0 && n2 >= 0 {
			m.Add(n1, n2, -y)
			m.Add(n2, n1, -y)
		}
	}
	for _, e := range a.ckt.Elements {
		n1, n2 := a.node(e.N1), a.node(e.N2)
		switch e.Kind {
		case netlist.R, netlist.SW:
			stamp(n1, n2, complex(1/e.Value, 0))
		case netlist.D:
			stamp(n1, n2, complex(1/e.Roff, 0))
		case netlist.C:
			stamp(n1, n2, complex(0, omega*e.Value))
		case netlist.L, netlist.V:
			b := nn + a.branchIdx[e.Name]
			if n1 >= 0 {
				m.Add(n1, b, 1)
				m.Add(b, n1, 1)
			}
			if n2 >= 0 {
				m.Add(n2, b, -1)
				m.Add(b, n2, -1)
			}
			if e.Kind == netlist.L {
				m.Add(b, b, complex(0, -omega*e.Value))
			} else {
				rhs[b] = sourceValue(e.Src, f)
			}
		case netlist.I:
			v := sourceValue(e.Src, f)
			if n1 >= 0 {
				rhs[n1] -= v
			}
			if n2 >= 0 {
				rhs[n2] += v
			}
		}
	}
	for _, cp := range a.couplings {
		bi, bj := nn+cp.bi, nn+cp.bj
		y := complex(0, -omega*cp.m)
		m.Add(bi, bj, y)
		m.Add(bj, bi, y)
	}
	return m.Solve(rhs)
}

// randomCircuit builds a valid random circuit: a driven ladder with a wide
// element-value spread (to exercise pivoting) and, when it has at least
// two inductors, mutual couplings between random pairs.
func randomCircuit(rng *rand.Rand) *netlist.Circuit {
	c := &netlist.Circuit{}
	nNodes := 2 + rng.Intn(5)
	nodes := []string{"0"}
	for i := 1; i <= nNodes; i++ {
		nodes = append(nodes, "n"+string(rune('0'+i)))
	}
	pick := func() string { return nodes[rng.Intn(len(nodes))] }
	c.AddV("V1", nodes[1], "0", netlist.Source{ACMag: 1 + rng.Float64(), ACPhase: rng.Float64()})
	nElem := 3 + rng.Intn(10)
	var inductors []string
	for i := 0; i < nElem; i++ {
		n1, n2 := pick(), pick()
		if n1 == n2 {
			n2 = "0"
			if n1 == "0" {
				n1 = nodes[1+rng.Intn(nNodes)]
			}
		}
		switch rng.Intn(4) {
		case 0, 1:
			// Spread over nine decades so elimination must pivot.
			c.AddR(elemName("R", i), n1, n2, math.Pow(10, -3+6*rng.Float64()))
		case 2:
			name := elemName("L", i)
			c.AddL(name, n1, n2, math.Pow(10, -7+3*rng.Float64()))
			inductors = append(inductors, name)
		case 3:
			c.AddC(elemName("C", i), n1, n2, math.Pow(10, -12+5*rng.Float64()))
		}
	}
	for k := 0; k+1 < len(inductors) && k < 3; k += 2 {
		c.AddK(elemName("K", k), inductors[k], inductors[k+1], 0.05+0.8*rng.Float64())
	}
	return c
}

func elemName(prefix string, i int) string {
	return prefix + "x" + string(rune('a'+i%26))
}

// TestCompiledPlansMatchNaiveAssembly drives randomized circuits through
// both the compiled-plan solve and a from-scratch dense assembly. The plan
// preserves the walk's accumulation order, so the results must agree to
// roundoff across the sweep band.
func TestCompiledPlansMatchNaiveAssembly(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	freqs := []float64{0, 50, 1e3, 150e3, 30e6, 108e6}
	for trial := 0; trial < 60; trial++ {
		c := randomCircuit(rng)
		a, err := NewAnalyzer(c)
		if err != nil {
			t.Fatalf("trial %d: NewAnalyzer: %v\n%s", trial, err, c)
		}
		for _, f := range freqs {
			want, naiveErr := naiveSolveAt(a, f)
			sol, err := a.Solve(f)
			if naiveErr != nil {
				// A legitimately singular point (e.g. parallel inductor
				// shorts at DC): both paths must agree it is singular.
				if err == nil {
					t.Fatalf("trial %d f=%g: naive singular (%v) but plan solved\n%s",
						trial, f, naiveErr, c)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d f=%g: %v\n%s", trial, f, err, c)
			}
			for i := range want {
				d := cmplx.Abs(sol.x[i] - want[i])
				scale := 1 + cmplx.Abs(want[i])
				if d > 1e-9*scale || math.IsNaN(d) {
					t.Fatalf("trial %d f=%g: unknown %d differs: plan %v naive %v\n%s",
						trial, f, i, sol.x[i], want[i], c)
				}
			}
		}
	}
}

// TestCompiledPlansBitwiseIdentical pins the ordering guarantee on a fixed
// representative circuit: the fused assembly must reproduce the direct
// walk bit for bit, which is what keeps the repo's golden figures stable.
func TestCompiledPlansBitwiseIdentical(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "in", "a", 0.1)
	c.AddL("L1", "a", "b", 2.2e-6)
	c.AddC("C1", "b", "0", 4.7e-6)
	c.AddL("L2", "b", "out", 10e-6)
	c.AddR("R2", "out", "0", 50)
	c.AddK("K1", "L1", "L2", 0.3)
	a, err := NewAnalyzer(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{150e3, 1e6, 30e6} {
		want, err := naiveSolveAt(a, f)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := a.Solve(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if sol.x[i] != want[i] {
				t.Fatalf("f=%g: unknown %d: plan %v != naive %v", f, i, sol.x[i], want[i])
			}
		}
	}
}

// TestProbeCouplingMatchesRebuild checks both probe modes against the slow
// path (mutate the circuit, build a fresh analyzer): overwriting an
// existing K and appending a new pair, then clearing back to baseline.
func TestProbeCouplingMatchesRebuild(t *testing.T) {
	t.Parallel()
	build := func() *netlist.Circuit {
		c := &netlist.Circuit{}
		c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
		c.AddR("R1", "in", "a", 1)
		c.AddL("L1", "a", "b", 1e-6)
		c.AddL("L2", "b", "0", 2e-6)
		c.AddL("L3", "b", "out", 5e-6)
		c.AddR("R2", "out", "0", 50)
		c.AddK("K1", "L1", "L2", 0.2)
		return c
	}
	const f = 10e6
	const k = 0.07
	check := func(name string, a *Analyzer, ref *netlist.Circuit) {
		t.Helper()
		ra, err := NewAnalyzer(ref)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", name, err)
		}
		want, err := ra.Solve(f)
		if err != nil {
			t.Fatalf("%s: rebuild solve: %v", name, err)
		}
		got, err := a.Solve(f)
		if err != nil {
			t.Fatalf("%s: probe solve: %v", name, err)
		}
		for i := range want.x {
			if d := cmplx.Abs(got.x[i] - want.x[i]); d > 1e-12*(1+cmplx.Abs(want.x[i])) {
				t.Fatalf("%s: unknown %d: probe %v rebuild %v", name, i, got.x[i], want.x[i])
			}
		}
	}

	a, err := NewAnalyzer(build())
	if err != nil {
		t.Fatal(err)
	}
	// Mode 1: the probed pair already has a K — overwrite in place.
	if err := a.SetProbeCoupling("L1", "L2", k); err != nil {
		t.Fatal(err)
	}
	ref := build()
	ref.SetCoupling("L1", "L2", k)
	check("override", a, ref)

	// Mode 2: new pair — appended entries.
	if err := a.SetProbeCoupling("L2", "L3", k); err != nil {
		t.Fatal(err)
	}
	ref = build()
	ref.SetCoupling("L2", "L3", k)
	check("append", a, ref)

	// Clearing returns to the baseline.
	a.ClearProbeCoupling()
	check("cleared", a, build())

	if err := a.SetProbeCoupling("L1", "R1", k); err == nil {
		t.Error("probe on a resistor should fail")
	}
}

// TestSweepMatchesSerialSolves checks the pooled sweep against one-by-one
// solves: identical values in identical slots, any parallelism.
func TestSweepMatchesSerialSolves(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{ACMag: 1})
	c.AddR("R1", "in", "out", 100)
	c.AddC("C1", "out", "0", 10e-9)
	c.AddL("L1", "out", "0", 1e-3)
	a, err := NewAnalyzer(c)
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([]float64, 64)
	for i := range freqs {
		freqs[i] = 1e3 * math.Pow(1.2, float64(i))
	}
	got, err := a.SweepNode(freqs, "out")
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		sol, err := a.Solve(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := sol.NodeVoltage("out"); got[i] != want {
			t.Fatalf("f=%g: sweep %v != serial %v", f, got[i], want)
		}
	}
}

// TestSingularPropagatesFrequency: two ideal voltage sources fighting over
// the same node pair make the MNA system exactly singular; the error must
// be ErrSingular wrapped with the offending frequency.
func TestSingularPropagatesFrequency(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "n", "0", netlist.Source{ACMag: 1})
	c.AddV("V2", "n", "0", netlist.Source{ACMag: 2})
	c.AddR("R1", "n", "0", 10)
	a, err := NewAnalyzer(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Solve(1000)
	if err == nil {
		t.Fatal("conflicting sources should be singular")
	}
	if !errors.Is(err, linalg.ErrSingular) {
		t.Errorf("error %v is not ErrSingular", err)
	}
	if !strings.Contains(err.Error(), "f=1000") {
		t.Errorf("error %q lacks the frequency context", err)
	}
}
