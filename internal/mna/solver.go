// Package mna implements frequency-domain circuit analysis by modified
// nodal analysis with complex arithmetic. Inductors and voltage sources
// contribute branch-current unknowns (group 2), which lets mutual
// inductances — the PEEC coupling results — be stamped directly, exactly as
// the paper inserts coupling factors between circuit inductances.
package mna

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/netlist"
)

// Gmin is the conductance added from every node to ground to keep
// matrices well-conditioned in the presence of floating subcircuits.
const Gmin = 1e-12

// Analyzer prepares a circuit for repeated AC solves.
type Analyzer struct {
	ckt       *netlist.Circuit
	nodeIdx   map[string]int
	nodes     []string
	branches  []*netlist.Element // elements with branch currents: L and V
	branchIdx map[string]int
	couplings []coupling
	n         int // total unknowns = len(nodes) + len(branches)
}

// coupling is a resolved mutual inductance between two inductor branches.
type coupling struct {
	bi, bj int
	m      float64
}

// NewAnalyzer validates and indexes the circuit.
func NewAnalyzer(c *netlist.Circuit) (*Analyzer, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	a := &Analyzer{
		ckt:       c,
		nodeIdx:   map[string]int{},
		branchIdx: map[string]int{},
	}
	a.nodes = c.Nodes()
	for i, n := range a.nodes {
		a.nodeIdx[n] = i
	}
	for _, e := range c.Elements {
		if e.Kind == netlist.L || e.Kind == netlist.V {
			a.branchIdx[e.Name] = len(a.branches)
			a.branches = append(a.branches, e)
		}
	}
	for _, e := range c.Elements {
		if e.Kind != netlist.K {
			continue
		}
		la, lb := c.Find(e.LA), c.Find(e.LB)
		m := e.Coup * math.Sqrt(la.Value*lb.Value)
		a.couplings = append(a.couplings, coupling{
			bi: a.branchIdx[e.LA],
			bj: a.branchIdx[e.LB],
			m:  m,
		})
	}
	a.n = len(a.nodes) + len(a.branches)
	return a, nil
}

// Solution holds one AC operating point.
type Solution struct {
	Freq float64
	a    *Analyzer
	x    []complex128
}

// node returns the index of a node, or -1 for ground.
func (a *Analyzer) node(name string) int {
	if name == "0" {
		return -1
	}
	return a.nodeIdx[name]
}

// Solve performs one AC analysis at frequency f (Hz). At f = 0 the DC
// values of the sources drive the circuit (inductors short, capacitors
// open); otherwise the AC magnitudes and phases do.
func (a *Analyzer) Solve(f float64) (*Solution, error) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("mna: invalid frequency %g", f)
	}
	engine.CountMNASolve()
	omega := 2 * math.Pi * f
	nn := len(a.nodes)
	m := linalg.NewComplex(a.n)
	rhs := make([]complex128, a.n)

	// Gmin to ground on every node.
	for i := 0; i < nn; i++ {
		m.Add(i, i, complex(Gmin, 0))
	}

	stampConductance := func(n1, n2 int, y complex128) {
		if n1 >= 0 {
			m.Add(n1, n1, y)
		}
		if n2 >= 0 {
			m.Add(n2, n2, y)
		}
		if n1 >= 0 && n2 >= 0 {
			m.Add(n1, n2, -y)
			m.Add(n2, n1, -y)
		}
	}

	for _, e := range a.ckt.Elements {
		n1, n2 := a.node(e.N1), a.node(e.N2)
		switch e.Kind {
		case netlist.R:
			stampConductance(n1, n2, complex(1/e.Value, 0))
		case netlist.SW:
			// In AC analysis the switch is its on-resistance; the EMI flow
			// replaces switching devices by equivalent noise sources.
			stampConductance(n1, n2, complex(1/e.Value, 0))
		case netlist.D:
			// Diodes are blocking in small-signal EMI analysis.
			stampConductance(n1, n2, complex(1/e.Roff, 0))
		case netlist.C:
			stampConductance(n1, n2, complex(0, omega*e.Value))
		case netlist.L, netlist.V:
			b := nn + a.branchIdx[e.Name]
			// KCL: branch current leaves N1 and enters N2.
			if n1 >= 0 {
				m.Add(n1, b, 1)
				m.Add(b, n1, 1)
			}
			if n2 >= 0 {
				m.Add(n2, b, -1)
				m.Add(b, n2, -1)
			}
			if e.Kind == netlist.L {
				m.Add(b, b, complex(0, -omega*e.Value))
			} else {
				rhs[b] = sourceValue(e.Src, f)
			}
		case netlist.I:
			v := sourceValue(e.Src, f)
			if n1 >= 0 {
				rhs[n1] -= v
			}
			if n2 >= 0 {
				rhs[n2] += v
			}
		case netlist.K:
			// handled below via a.couplings
		}
	}
	for _, cp := range a.couplings {
		bi, bj := nn+cp.bi, nn+cp.bj
		y := complex(0, -omega*cp.m)
		m.Add(bi, bj, y)
		m.Add(bj, bi, y)
	}

	x, err := m.Solve(rhs)
	if err != nil {
		return nil, fmt.Errorf("mna: f=%g Hz: %w", f, err)
	}
	return &Solution{Freq: f, a: a, x: x}, nil
}

// sourceValue returns the complex excitation of a source at frequency f.
func sourceValue(s *netlist.Source, f float64) complex128 {
	if f == 0 {
		return complex(s.DC, 0)
	}
	return cmplx.Rect(s.ACMag, s.ACPhase)
}

// NodeVoltage returns the complex voltage of the named node (ground is 0).
func (s *Solution) NodeVoltage(name string) complex128 {
	if name == "0" {
		return 0
	}
	i, ok := s.a.nodeIdx[name]
	if !ok {
		return cmplx.NaN()
	}
	return s.x[i]
}

// BranchCurrent returns the complex current through the named inductor or
// voltage source (flowing N1 → N2), or NaN for other elements.
func (s *Solution) BranchCurrent(name string) complex128 {
	b, ok := s.a.branchIdx[name]
	if !ok {
		return cmplx.NaN()
	}
	return s.x[len(s.a.nodes)+b]
}

// SweepNode solves the circuit at each frequency and returns the complex
// voltage at the named node.
func (a *Analyzer) SweepNode(freqs []float64, node string) ([]complex128, error) {
	out := make([]complex128, len(freqs))
	for i, f := range freqs {
		sol, err := a.Solve(f)
		if err != nil {
			return nil, err
		}
		out[i] = sol.NodeVoltage(node)
	}
	return out, nil
}
