// Package mna implements frequency-domain circuit analysis by modified
// nodal analysis with complex arithmetic. Inductors and voltage sources
// contribute branch-current unknowns (group 2), which lets mutual
// inductances — the PEEC coupling results — be stamped directly, exactly as
// the paper inserts coupling factors between circuit inductances.
//
// The MNA matrix is affine in frequency, M(ω) = G + jω·B: every stamp is
// either frequency-independent (conductances, branch incidence) or scales
// linearly with ω (capacitors, inductors, mutual couplings). NewAnalyzer
// therefore walks the netlist once and compiles flat stamp plans — index/
// value lists for G and B plus right-hand-side source slots — so each
// per-frequency assembly is a single fused pass into a reusable buffer
// with no map lookups and no allocation. The plan entries are emitted in
// the exact order the old netlist walk stamped them, which keeps the
// floating-point sums (and therefore every figure) bit-for-bit identical.
package mna

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Gmin is the conductance added from every node to ground to keep
// matrices well-conditioned in the presence of floating subcircuits.
const Gmin = 1e-12

// planEntry is one precompiled matrix stamp: a flat buffer index and a
// value. Entries on the G plan add v to the real part of the cell;
// entries on the B plan add ω·v to the imaginary part.
type planEntry struct {
	idx int
	v   float64
}

// srcSlot is one precompiled right-hand-side contribution of an
// independent source. The slot keeps a pointer to the element's Source so
// per-harmonic phasor updates (emi drives ACMag/ACPhase per harmonic) are
// picked up without recompiling.
type srcSlot struct {
	row      int
	negative bool
	src      *netlist.Source
}

// Analyzer prepares a circuit for repeated AC solves. The compiled stamp
// plans are immutable during solves; the solve scratch (assembly buffer,
// factorization, solution) is reused call to call, so an Analyzer is not
// safe for concurrent use — SweepNodeCtx fans out internally with
// per-worker scratch, and parallel callers construct one Analyzer per
// worker.
type Analyzer struct {
	ckt       *netlist.Circuit
	nodeIdx   map[string]int
	nodes     []string
	branches  []*netlist.Element // elements with branch currents: L and V
	branchIdx map[string]int
	couplings []coupling
	n         int // total unknowns = len(nodes) + len(branches)

	gPlan    []planEntry
	bPlan    []planEntry
	rhsPlan  []srcSlot
	baseBLen int // bPlan length without an appended probe coupling

	// Probe-coupling state (sensitivity analysis): either two overwritten
	// coupling entries (restored on clear) or two appended cells
	// (truncated on clear).
	probeMode  int // 0 = none, 1 = overwrote existing K, 2 = appended
	probeIdx   [2]int
	probeSaved [2]float64

	// Factorization-backend selection (see SetSolver) and the compiled
	// sparse assembly plan: the CSC pattern of the stamp cells plus the
	// value-slot index of every G/B plan entry. Built lazily by
	// prepareSolver and shared read-only by every sweep worker; patGen
	// invalidates worker-local matrices when a probe append changes the
	// pattern.
	mode    linalg.SolverMode
	sparse  bool // prepareSolver's last decision, read by solve
	pat     *linalg.Pattern
	gSlot   []int32
	bSlot   []int32
	patBLen int // len(bPlan) the pattern was built for
	patGen  int

	scr solveScratch // serial-API scratch; SweepNodeCtx workers get their own
}

// solveScratch is the per-worker reusable state of the solve path: the
// assembly buffer, the factorization scratch, the right-hand side and the
// solution. Everything is lazily sized on first use and then recycled, so
// the steady-state solve performs no allocations.
type solveScratch struct {
	m   *linalg.Complex
	lu  linalg.ComplexLU
	sm  *linalg.SparseComplex
	slu linalg.SparseComplexLU
	gen int // pattern generation sm was built against
	rhs []complex128
	sol Solution
}

// coupling is a resolved mutual inductance between two inductor branches.
type coupling struct {
	bi, bj int
	m      float64
}

// NewAnalyzer validates and indexes the circuit, then compiles the stamp
// plans.
func NewAnalyzer(c *netlist.Circuit) (*Analyzer, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	a := &Analyzer{
		ckt:       c,
		nodeIdx:   map[string]int{},
		branchIdx: map[string]int{},
	}
	a.nodes = c.Nodes()
	for i, n := range a.nodes {
		a.nodeIdx[n] = i
	}
	for _, e := range c.Elements {
		if e.Kind == netlist.L || e.Kind == netlist.V {
			a.branchIdx[e.Name] = len(a.branches)
			a.branches = append(a.branches, e)
		}
	}
	for _, e := range c.Elements {
		if e.Kind != netlist.K {
			continue
		}
		la, lb := c.Find(e.LA), c.Find(e.LB)
		m := e.Coup * math.Sqrt(la.Value*lb.Value)
		a.couplings = append(a.couplings, coupling{
			bi: a.branchIdx[e.LA],
			bj: a.branchIdx[e.LB],
			m:  m,
		})
	}
	a.n = len(a.nodes) + len(a.branches)
	a.compile()
	return a, nil
}

// compile walks the netlist once and records every stamp as a plan entry,
// preserving the element-order accumulation of the direct walk.
func (a *Analyzer) compile() {
	nn := len(a.nodes)
	addG := func(i, j int, v float64) {
		a.gPlan = append(a.gPlan, planEntry{idx: i*a.n + j, v: v})
	}
	addB := func(i, j int, v float64) {
		a.bPlan = append(a.bPlan, planEntry{idx: i*a.n + j, v: v})
	}
	stampG := func(n1, n2 int, g float64) {
		if n1 >= 0 {
			addG(n1, n1, g)
		}
		if n2 >= 0 {
			addG(n2, n2, g)
		}
		if n1 >= 0 && n2 >= 0 {
			addG(n1, n2, -g)
			addG(n2, n1, -g)
		}
	}
	stampB := func(n1, n2 int, b float64) {
		if n1 >= 0 {
			addB(n1, n1, b)
		}
		if n2 >= 0 {
			addB(n2, n2, b)
		}
		if n1 >= 0 && n2 >= 0 {
			addB(n1, n2, -b)
			addB(n2, n1, -b)
		}
	}

	// Gmin to ground on every node.
	for i := 0; i < nn; i++ {
		addG(i, i, Gmin)
	}
	for _, e := range a.ckt.Elements {
		n1, n2 := a.node(e.N1), a.node(e.N2)
		switch e.Kind {
		case netlist.R:
			stampG(n1, n2, 1/e.Value)
		case netlist.SW:
			// In AC analysis the switch is its on-resistance; the EMI flow
			// replaces switching devices by equivalent noise sources.
			stampG(n1, n2, 1/e.Value)
		case netlist.D:
			// Diodes are blocking in small-signal EMI analysis.
			stampG(n1, n2, 1/e.Roff)
		case netlist.C:
			stampB(n1, n2, e.Value)
		case netlist.L, netlist.V:
			b := nn + a.branchIdx[e.Name]
			// KCL: branch current leaves N1 and enters N2.
			if n1 >= 0 {
				addG(n1, b, 1)
				addG(b, n1, 1)
			}
			if n2 >= 0 {
				addG(n2, b, -1)
				addG(b, n2, -1)
			}
			if e.Kind == netlist.L {
				addB(b, b, -e.Value)
			} else {
				a.rhsPlan = append(a.rhsPlan, srcSlot{row: b, src: e.Src})
			}
		case netlist.I:
			if n1 >= 0 {
				a.rhsPlan = append(a.rhsPlan, srcSlot{row: n1, negative: true, src: e.Src})
			}
			if n2 >= 0 {
				a.rhsPlan = append(a.rhsPlan, srcSlot{row: n2, src: e.Src})
			}
		case netlist.K:
			// handled below via a.couplings
		}
	}
	for _, cp := range a.couplings {
		bi, bj := nn+cp.bi, nn+cp.bj
		addB(bi, bj, -cp.m)
		addB(bj, bi, -cp.m)
	}
	a.baseBLen = len(a.bPlan)
}

// Solution holds one AC operating point. A Solution returned by Solve
// shares the Analyzer's (or sweep worker's) solve buffer: it is valid
// until the next Solve on the same Analyzer. Extract values before
// solving again.
type Solution struct {
	Freq float64
	a    *Analyzer
	x    []complex128
}

// node returns the index of a node, or -1 for ground.
func (a *Analyzer) node(name string) int {
	if name == "0" {
		return -1
	}
	return a.nodeIdx[name]
}

// SetSolver overrides the factorization backend for this Analyzer.
// The default, ModeAuto, defers to the process-wide selection (the CLIs'
// -solver flag via linalg.SetDefaultSolver) and from there to the
// size/density heuristic. Call before solving; the choice is re-evaluated
// on the next Solve or sweep.
func (a *Analyzer) SetSolver(m linalg.SolverMode) { a.mode = m }

// SolverKind reports which backend the current configuration selects for
// this system: "dense" or "sparse".
func (a *Analyzer) SolverKind() string {
	if a.prepareSolver() {
		return "sparse"
	}
	return "dense"
}

// prepareSolver decides dense vs sparse for the current mode and system
// and, when sparse, makes sure the CSC pattern and assembly slots exist.
// It mutates the Analyzer, so sweeps call it once before fanning out;
// workers then only read the decision and the immutable pattern.
func (a *Analyzer) prepareSolver() bool {
	mode := a.mode
	if mode == linalg.ModeAuto {
		mode = linalg.DefaultSolver()
	}
	// Plan lengths over-count the unique cells (stamps accumulate), so
	// this density estimate is conservative: it only ever biases auto
	// toward the dense path.
	a.sparse = linalg.ChooseSparse(mode, a.n, len(a.gPlan)+len(a.bPlan))
	if a.sparse {
		a.ensureSparsePlan()
		// Fill-aware refinement: auto falls back to dense when the
		// pattern's projected elimination fill makes sparse the slower
		// backend (dense K-coupling meshes); a forced ModeSparse stands.
		if mode == linalg.ModeAuto && !linalg.SparseWorthwhile(a.n, a.pat.EstFactorFlops()) {
			a.sparse = false
		}
	}
	return a.sparse
}

// ensureSparsePlan compiles the stamp plans' cell indices into a shared
// CSC pattern plus per-entry value slots. A probe append (SetProbeCoupling
// mode 2) changes the B plan's cells, so the pattern is keyed on the plan
// length and rebuilt — and patGen bumped — when it no longer matches.
func (a *Analyzer) ensureSparsePlan() {
	if a.pat != nil && a.patBLen == len(a.bPlan) {
		return
	}
	flat := make([]int, 0, len(a.gPlan)+len(a.bPlan))
	for _, e := range a.gPlan {
		flat = append(flat, e.idx)
	}
	for _, e := range a.bPlan {
		flat = append(flat, e.idx)
	}
	pat, slots := linalg.NewPatternFromFlat(a.n, flat)
	a.pat = pat
	a.gSlot = slots[:len(a.gPlan):len(a.gPlan)]
	a.bSlot = slots[len(a.gPlan):]
	a.patBLen = len(a.bPlan)
	a.patGen++
}

// Solve performs one AC analysis at frequency f (Hz). At f = 0 the DC
// values of the sources drive the circuit (inductors short, capacitors
// open); otherwise the AC magnitudes and phases do. The returned Solution
// reuses the Analyzer's buffers and is valid until the next Solve.
func (a *Analyzer) Solve(f float64) (*Solution, error) {
	a.prepareSolver()
	return a.solve(&a.scr, f)
}

// solve runs one assembly/factor/resolve cycle against the given scratch.
// The backend decision and (for sparse) the pattern must already be in
// place via prepareSolver.
func (a *Analyzer) solve(s *solveScratch, f float64) (*Solution, error) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("mna: invalid frequency %g", f)
	}
	engine.CountMNASolve()
	omega := 2 * math.Pi * f
	if s.rhs == nil {
		s.rhs = make([]complex128, a.n)
		s.sol = Solution{a: a, x: make([]complex128, a.n)}
	}

	// Fused assembly: M = G + jω·B in one pass over the compiled plans —
	// into the flat dense buffer or the pattern's value slots. Plan order
	// is identical either way, so the per-cell accumulation (and thus the
	// rounding) of both backends matches the historic netlist walk.
	engine.CountAssembly()
	var solver linalg.ComplexFactorizer
	var ferr error
	if a.sparse {
		if s.sm == nil || s.gen != a.patGen {
			s.sm = linalg.NewSparseComplex(a.pat)
			s.gen = a.patGen
		}
		v := s.sm.V
		for i := range v {
			v[i] = 0
		}
		for i, e := range a.gPlan {
			v[a.gSlot[i]] += complex(e.v, 0)
		}
		for i, e := range a.bPlan {
			v[a.bSlot[i]] += complex(0, omega*e.v)
		}
		ferr = s.sm.Factor(&s.slu)
		solver = &s.slu
	} else {
		if s.m == nil {
			s.m = linalg.NewComplex(a.n)
		}
		buf := s.m.V
		for i := range buf {
			buf[i] = 0
		}
		for _, e := range a.gPlan {
			buf[e.idx] += complex(e.v, 0)
		}
		for _, e := range a.bPlan {
			buf[e.idx] += complex(0, omega*e.v)
		}
		ferr = s.m.Factor(&s.lu)
		solver = &s.lu
	}
	if ferr != nil {
		return nil, fmt.Errorf("mna: f=%g Hz: %w", f, ferr)
	}
	for i := range s.rhs {
		s.rhs[i] = 0
	}
	for _, sl := range a.rhsPlan {
		v := sourceValue(sl.src, f)
		if sl.negative {
			s.rhs[sl.row] -= v
		} else {
			s.rhs[sl.row] += v
		}
	}
	if err := solver.SolveFactored(s.rhs, s.sol.x); err != nil {
		return nil, fmt.Errorf("mna: f=%g Hz: %w", f, err)
	}
	s.sol.Freq = f
	return &s.sol, nil
}

// SetProbeCoupling temporarily sets the mutual coupling between two
// inductors to factor k, applied as a two-entry delta on the compiled B
// plan — no circuit clone, no recompilation. An existing K coupling
// between the pair is overridden for the duration; ClearProbeCoupling
// undoes the probe. Any previous probe is cleared first.
func (a *Analyzer) SetProbeCoupling(la, lb string, k float64) error {
	a.ClearProbeCoupling()
	ea, eb := a.ckt.Find(la), a.ckt.Find(lb)
	if ea == nil || ea.Kind != netlist.L || eb == nil || eb.Kind != netlist.L {
		return fmt.Errorf("mna: probe coupling %s/%s: both must be inductors", la, lb)
	}
	ia, ib := a.branchIdx[la], a.branchIdx[lb]
	m := k * math.Sqrt(ea.Value*eb.Value)
	// The coupling stamps live at the tail of the base B plan, two entries
	// per coupling in coupling order.
	couplingStart := a.baseBLen - 2*len(a.couplings)
	for ci, cp := range a.couplings {
		if (cp.bi == ia && cp.bj == ib) || (cp.bi == ib && cp.bj == ia) {
			a.probeMode = 1
			a.probeIdx = [2]int{couplingStart + 2*ci, couplingStart + 2*ci + 1}
			for pi, ei := range a.probeIdx {
				a.probeSaved[pi] = a.bPlan[ei].v
				a.bPlan[ei].v = -m
			}
			return nil
		}
	}
	nn := len(a.nodes)
	bi, bj := nn+ia, nn+ib
	a.probeMode = 2
	a.bPlan = append(a.bPlan,
		planEntry{idx: bi*a.n + bj, v: -m},
		planEntry{idx: bj*a.n + bi, v: -m},
	)
	return nil
}

// ClearProbeCoupling removes the probe set by SetProbeCoupling, restoring
// the compiled plans. It is a no-op when no probe is active.
func (a *Analyzer) ClearProbeCoupling() {
	switch a.probeMode {
	case 1:
		for pi, ei := range a.probeIdx {
			a.bPlan[ei].v = a.probeSaved[pi]
		}
	case 2:
		a.bPlan = a.bPlan[:a.baseBLen]
	}
	a.probeMode = 0
}

// sourceValue returns the complex excitation of a source at frequency f.
func sourceValue(s *netlist.Source, f float64) complex128 {
	if f == 0 {
		return complex(s.DC, 0)
	}
	return cmplx.Rect(s.ACMag, s.ACPhase)
}

// NodeVoltage returns the complex voltage of the named node (ground is 0).
func (s *Solution) NodeVoltage(name string) complex128 {
	if name == "0" {
		return 0
	}
	i, ok := s.a.nodeIdx[name]
	if !ok {
		return cmplx.NaN()
	}
	return s.x[i]
}

// BranchCurrent returns the complex current through the named inductor or
// voltage source (flowing N1 → N2), or NaN for other elements.
func (s *Solution) BranchCurrent(name string) complex128 {
	b, ok := s.a.branchIdx[name]
	if !ok {
		return cmplx.NaN()
	}
	return s.x[len(s.a.nodes)+b]
}

// SweepNode solves the circuit at each frequency and returns the complex
// voltage at the named node.
func (a *Analyzer) SweepNode(freqs []float64, node string) ([]complex128, error) {
	return a.SweepNodeCtx(context.Background(), freqs, node)
}

// SweepNodeCtx is the batched sweep: frequencies fan out over the shared
// engine pool, each worker solving with its own scratch against the one
// compiled plan set. Slot-per-index writes keep the result identical to
// the serial sweep under any parallelism. The compiled plans (including
// any active probe coupling) must not be mutated while the sweep runs.
func (a *Analyzer) SweepNodeCtx(ctx context.Context, freqs []float64, node string) ([]complex128, error) {
	a.prepareSolver() // backend decision + shared pattern, before the fan-out
	ctx, sp := obs.Start(ctx, "mna.sweep")
	sp.Int("freqs", int64(len(freqs)))
	var f0, r0 uint64
	if sp != nil {
		_, f0, r0 = engine.LUCounts()
	}
	defer func() {
		if sp != nil {
			_, f1, r1 := engine.LUCounts()
			sp.Int("lu_factorizations", int64(f1-f0))
			sp.Int("lu_resolves", int64(r1-r0))
		}
		sp.End()
	}()
	out := make([]complex128, len(freqs))
	err := engine.ForEachStateCtx(ctx, len(freqs),
		func() (*solveScratch, error) { return &solveScratch{}, nil },
		func(s *solveScratch, i int) error {
			sol, err := a.solve(s, freqs[i])
			if err != nil {
				return err
			}
			out[i] = sol.NodeVoltage(node)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}
