package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Job progress streaming: long-running batch jobs (the design-space
// explorer, the Monte Carlo yield analysis) publish intermediate results
// — per-generation Pareto fronts, running yield estimates — while they
// run. Each job owns a bounded progressLog ring; subscribers (the
// GET /v1/jobs/{id}/events SSE handler) replay what the ring still holds
// and then follow live. Runners reach their job's log through the
// context via Publish, so the compute code never sees the server.

const (
	// progressRingCap bounds the per-job replay ring. An explorer emits
	// one event per generation and a yield run one per batch — dozens,
	// not thousands — so the ring normally holds the whole history.
	progressRingCap = 512

	// progressChanSlack is the live-event buffer of a subscriber beyond
	// its replay backlog; a client that falls further behind is dropped
	// (its channel closes) and must reconnect with ?after=.
	progressChanSlack = 64
)

// ProgressEvent is one intermediate result of a running job.
type ProgressEvent struct {
	Seq   uint64          `json:"seq"`   // 1-based, per job
	Stage string          `json:"stage"` // e.g. "front", "yield"
	Data  json.RawMessage `json:"data"`  // stage-specific payload
	At    time.Time       `json:"at"`
}

// progressLog is a bounded ring of a job's progress events with
// subscription fan-out. Safe for concurrent use.
type progressLog struct {
	mu     sync.Mutex
	events []ProgressEvent // the most recent progressRingCap events
	seq    uint64          // seq of the last published event
	subs   map[chan ProgressEvent]bool
	closed bool
}

func newProgressLog() *progressLog {
	return &progressLog{subs: make(map[chan ProgressEvent]bool)}
}

// publish appends an event and fans it out. A subscriber whose channel
// is full is dropped — progress is advisory, and a stalled client must
// not block the worker. Events published after close are discarded.
// Returns whether the event was accepted.
func (p *progressLog) publish(stage string, v any, now time.Time) bool {
	data, err := json.Marshal(v)
	if err != nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.seq++
	ev := ProgressEvent{Seq: p.seq, Stage: stage, Data: data, At: now}
	p.events = append(p.events, ev)
	if n := len(p.events) - progressRingCap; n > 0 {
		p.events = append(p.events[:0:0], p.events[n:]...)
	}
	for ch := range p.subs {
		select {
		case ch <- ev:
		default:
			delete(p.subs, ch)
			close(ch)
		}
	}
	return true
}

// subscribe returns a channel that replays the retained events with
// Seq > after and then carries live events until cancel is called, the
// log closes, or the subscriber falls behind. The second return is the
// seq of the latest event at subscription time.
func (p *progressLog) subscribe(after uint64) (<-chan ProgressEvent, uint64, func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var replay []ProgressEvent
	for _, ev := range p.events {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	ch := make(chan ProgressEvent, len(replay)+progressChanSlack)
	for _, ev := range replay {
		ch <- ev
	}
	if p.closed {
		close(ch)
		return ch, p.seq, func() {}
	}
	p.subs[ch] = true
	cancel := func() {
		p.mu.Lock()
		if p.subs[ch] {
			delete(p.subs, ch)
			close(ch)
		}
		p.mu.Unlock()
	}
	return ch, p.seq, cancel
}

// close ends the live stream: every subscriber's channel closes. The
// ring is retained, so late subscribers still replay the history.
func (p *progressLog) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for ch := range p.subs {
		delete(p.subs, ch)
		close(ch)
	}
}

// publisherKey carries a job's publish function through the runner's
// context.
type publisherKey struct{}

func withPublisher(ctx context.Context, fn func(stage string, v any)) context.Context {
	return context.WithValue(ctx, publisherKey{}, fn)
}

// Publish emits an intermediate result from inside a runner: v is JSON-
// marshalled and streamed to the job's event subscribers. Outside a job
// context (unit tests, CLI reuse of the runners) it is a no-op, so
// compute code can publish unconditionally.
func Publish(ctx context.Context, stage string, v any) {
	if fn, ok := ctx.Value(publisherKey{}).(func(string, any)); ok {
		fn(stage, v)
	}
}
