package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// testServer builds a server with injected runners and hands back a drain
// function registered as cleanup.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

// TestDedupConcurrent is the acceptance test for request deduplication:
// two identical concurrent submissions share one engine solve and both
// read the same result.
func TestDedupConcurrent(t *testing.T) {
	var runs atomic.Int64
	gate := make(chan struct{})
	s := testServer(t, Config{
		Workers: 2,
		Runners: map[Kind]Runner{
			"slow": func(ctx context.Context, req []byte) (any, error) {
				runs.Add(1)
				<-gate // hold the first run until both submissions landed
				return map[string]string{"echo": string(req)}, nil
			},
		},
	})

	body := []byte(`{"x":1}`)
	j1, err := s.Submit("slow", body)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit("slow", body)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatalf("identical in-flight submissions got distinct jobs %s / %s", j1.ID, j2.ID)
	}
	if s.m.dedupHits.Load() != 1 {
		t.Fatalf("dedup hits = %d, want 1", s.m.dedupHits.Load())
	}
	// A different body must NOT dedup.
	j3, err := s.Submit("slow", []byte(`{"x":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if j3 == j1 {
		t.Fatal("distinct bodies deduplicated")
	}
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, j := range []*Job{j1, j3} {
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("runner ran %d times, want 2 (one per distinct body)", n)
	}
	res, errMsg := j1.Result()
	if errMsg != "" || !strings.Contains(string(res), "echo") {
		t.Fatalf("j1 result = %q err %q", res, errMsg)
	}
	if j1.State() != StateDone || j2.State() != StateDone {
		t.Fatalf("states %s/%s, want done", j1.State(), j2.State())
	}
}

// TestCancelFreesWorker is the acceptance test for cancellation: an
// aborted job stops consuming its worker before natural completion, so a
// subsequent job gets to run on the single worker.
func TestCancelFreesWorker(t *testing.T) {
	started := make(chan struct{}, 1)
	s := testServer(t, Config{
		Workers:    1,
		JobTimeout: time.Hour, // natural completion is far away
		Runners: map[Kind]Runner{
			"block": func(ctx context.Context, req []byte) (any, error) {
				started <- struct{}{}
				<-ctx.Done() // blocks forever unless cancelled
				return nil, ctx.Err()
			},
			"fast": func(ctx context.Context, req []byte) (any, error) {
				return "ok", nil
			},
		},
	})

	blocked, err := s.Submit("block", []byte(`1`))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocking job never started")
	}
	acted, err := s.Cancel(blocked.ID)
	if err != nil || !acted {
		t.Fatalf("Cancel = %v, %v", acted, err)
	}

	fast, err := s.Submit("fast", []byte(`2`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := fast.Wait(ctx); err != nil {
		t.Fatal("worker still held by the cancelled job:", err)
	}
	if fast.State() != StateDone {
		t.Fatalf("fast job state %s, want done", fast.State())
	}
	if err := blocked.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if blocked.State() != StateCancelled {
		t.Fatalf("blocked job state %s, want cancelled", blocked.State())
	}
}

// TestCancelQueued verifies a job cancelled before a worker picks it up
// never runs.
func TestCancelQueued(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	s := testServer(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			"hold": func(ctx context.Context, req []byte) (any, error) {
				<-release
				return nil, nil
			},
			"count": func(ctx context.Context, req []byte) (any, error) {
				runs.Add(1)
				return nil, nil
			},
		},
	})
	if _, err := s.Submit("hold", []byte(`0`)); err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit("count", []byte(`1`))
	if err != nil {
		t.Fatal(err)
	}
	if acted, err := s.Cancel(queued.ID); err != nil || !acted {
		t.Fatalf("Cancel = %v, %v", acted, err)
	}
	if queued.State() != StateCancelled {
		t.Fatalf("state %s, want cancelled", queued.State())
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := queued.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Submit another job and wait for it, proving the queue drained past
	// the cancelled entry without running it.
	after, err := s.Submit("count", []byte(`2`))
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("count runner ran %d times, want 1 (cancelled job must not run)", n)
	}
}

// TestResultStore verifies the completed-result LRU: an identical request
// after completion is answered without running again, and expires after
// the TTL.
func TestResultStore(t *testing.T) {
	var runs atomic.Int64
	now := time.Now()
	var nowMu sync.Mutex
	s := testServer(t, Config{
		Workers:   1,
		ResultTTL: time.Minute,
		Runners: map[Kind]Runner{
			"r": func(ctx context.Context, req []byte) (any, error) {
				runs.Add(1)
				return "v", nil
			},
		},
	})
	s.now = func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		nowMu.Lock()
		now = now.Add(d)
		nowMu.Unlock()
	}

	body := []byte(`{"q":1}`)
	j1, err := s.Submit("r", body)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	j2, err := s.Submit("r", body)
	if err != nil {
		t.Fatal(err)
	}
	if j2.State() != StateDone {
		t.Fatalf("store hit should return a done job, got %s", j2.State())
	}
	if got := s.m.storeHits.Load(); got != 1 {
		t.Fatalf("store hits = %d, want 1", got)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("runner ran %d times, want 1", n)
	}

	advance(2 * time.Minute) // beyond the TTL
	j3, err := s.Submit("r", body)
	if err != nil {
		t.Fatal(err)
	}
	if j3.State() == StateDone {
		t.Fatal("expired entry served from the store")
	}
	if err := j3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("runner ran %d times after expiry, want 2", n)
	}
}

// TestStoreLRUEviction verifies capacity-bounded eviction order.
func TestStoreLRUEviction(t *testing.T) {
	st := newResultStore(2, time.Minute)
	now := time.Now()
	k := func(i int) engine.Key { return engine.Key{uint64(i), 0} }
	st.put(k(1), "j1", json.RawMessage(`1`), now)
	st.put(k(2), "j2", json.RawMessage(`2`), now)
	st.get(k(1), now)                             // refresh 1 → LRU is 2
	st.put(k(3), "j3", json.RawMessage(`3`), now) // evicts 2
	if r, _ := st.get(k(2), now); r != nil {
		t.Fatal("LRU evicted the wrong entry")
	}
	r1, id1 := st.get(k(1), now)
	r3, _ := st.get(k(3), now)
	if r1 == nil || r3 == nil {
		t.Fatal("recently used entries evicted")
	}
	if id1 != "j1" {
		t.Fatalf("store hit returned job ID %q, want j1", id1)
	}
	if st.len() != 2 {
		t.Fatalf("len = %d, want 2", st.len())
	}
}

// TestQueueFull verifies bounded-queue rejection.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	s := testServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Runners: map[Kind]Runner{
			"hold": func(ctx context.Context, req []byte) (any, error) {
				select {
				case <-release:
				case <-ctx.Done():
				}
				return nil, nil
			},
		},
	})
	defer close(release)
	// First job occupies the worker, second the single queue slot.
	// (The worker may not have dequeued the first yet, so allow one
	// retry for the second submission.)
	if _, err := s.Submit("hold", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Submit("hold", []byte(`2`)); err == nil {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("second job never found a queue slot")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue is now full (worker busy + one queued): a third distinct job
	// must be rejected once the slot is taken.
	_, err := s.Submit("hold", []byte(`3`))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if s.m.rejectedFull.Load() == 0 {
		t.Fatal("rejection not counted")
	}
}

// TestJobDeadline verifies the per-job timeout fails the job and frees
// the worker.
func TestJobDeadline(t *testing.T) {
	s := testServer(t, Config{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		Runners: map[Kind]Runner{
			"block": func(ctx context.Context, req []byte) (any, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			},
		},
	})
	j, err := s.Submit("block", []byte(`1`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %s, want failed", j.State())
	}
	if _, msg := j.Result(); !strings.Contains(msg, "deadline") {
		t.Fatalf("error %q does not mention the deadline", msg)
	}
}

// TestDetachCancelsAbandonedJob verifies the client-abort path: when the
// only waiting submission detaches, the job is cancelled; a pinned
// (async) job survives its waiters.
func TestDetachCancelsAbandonedJob(t *testing.T) {
	s := testServer(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			"block": func(ctx context.Context, req []byte) (any, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			},
		},
	})
	j, err := s.SubmitAttached("block", []byte(`1`))
	if err != nil {
		t.Fatal(err)
	}
	s.Detach(j)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCancelled {
		t.Fatalf("abandoned job state %s, want cancelled", j.State())
	}

	// Same request submitted async then attached: detaching the waiter
	// must NOT cancel the pinned job.
	j2, err := s.Submit("block", []byte(`2`))
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.SubmitAttached("block", []byte(`2`))
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j3 {
		t.Fatal("attached submission did not dedup onto the async job")
	}
	s.Detach(j3)
	if st := j2.State(); st == StateCancelled {
		t.Fatal("pinned job cancelled by a detaching waiter")
	}
	if acted, _ := s.Cancel(j2.ID); !acted {
		t.Fatal("cleanup cancel failed")
	}
}

// TestDrain verifies graceful drain: intake stops, running jobs are
// cancelled once the drain deadline expires, workers exit.
func TestDrain(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			"block": func(ctx context.Context, req []byte) (any, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			},
		},
	})
	j, err := s.Submit("block", []byte(`1`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded (forced drain)", err)
	}
	if j.State() != StateCancelled {
		t.Fatalf("job state %s after forced drain, want cancelled", j.State())
	}
	if _, err := s.Submit("block", []byte(`2`)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	// Second drain returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("idempotent drain = %v", err)
	}
}

// TestJobPruning verifies finished jobs leave the map after the retention
// window so memory stays bounded.
func TestJobPruning(t *testing.T) {
	now := time.Now()
	var nowMu sync.Mutex
	s := testServer(t, Config{
		Workers:   1,
		ResultTTL: time.Minute,
		ResultCap: 4,
		Runners: map[Kind]Runner{
			"r": func(ctx context.Context, req []byte) (any, error) { return "x", nil },
		},
	})
	s.now = func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}

	j, err := s.Submit("r", []byte(`0`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	nowMu.Lock()
	now = now.Add(2 * time.Minute)
	nowMu.Unlock()
	// Any submission triggers the prune sweep.
	j2, err := s.Submit("r", []byte(`1`))
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Job(j.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired job still retrievable (err=%v)", err)
	}
}

// TestUnknownKind verifies submission validation.
func TestUnknownKind(t *testing.T) {
	s := testServer(t, Config{Workers: 1, Runners: map[Kind]Runner{"a": func(context.Context, []byte) (any, error) { return nil, nil }}})
	if _, err := s.Submit("nope", nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := s.Job("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Job(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(missing) = %v, want ErrNotFound", err)
	}
}

// TestConcurrentSubmitters hammers the server from many goroutines with a
// small set of distinct bodies, checking every submitter observes a done
// job with the right result — the determinism/duplication smoke under
// load (meaningful under -race).
func TestConcurrentSubmitters(t *testing.T) {
	var runs atomic.Int64
	s := testServer(t, Config{
		Workers:    4,
		QueueDepth: 256,
		Runners: map[Kind]Runner{
			"echo": func(ctx context.Context, req []byte) (any, error) {
				runs.Add(1)
				return string(req), nil
			},
		},
	})
	const goroutines = 16
	const perG = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				body := fmt.Sprintf(`{"n":%d}`, i%4)
				j, err := s.Submit("echo", []byte(body))
				if err != nil {
					errs <- err
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				err = j.Wait(ctx)
				cancel()
				if err != nil {
					errs <- err
					continue
				}
				res, msg := j.Result()
				if msg != "" {
					errs <- errors.New(msg)
					continue
				}
				var got string
				if err := json.Unmarshal(res, &got); err != nil || got != body {
					errs <- fmt.Errorf("result %q, want %q", got, body)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// With dedup and the result store, far fewer runs than submissions.
	if n := runs.Load(); n > goroutines*perG {
		t.Fatalf("runner ran %d times for %d submissions", n, goroutines*perG)
	}
}
