package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/store"
)

// The replica half of the cluster protocol (the router half lives in
// internal/cluster). Three endpoints move a session between replicas
// using its per-session WAL as the unit of transfer:
//
//	GET  /cluster/sessions/{id}/log      serve the durable log (JSON SessionLog)
//	POST /cluster/sessions/{id}/takeover fetch from {"source"}, replay, adopt
//	POST /cluster/sessions/{id}/release  drop local copy after a peer adopted it
//
// The log endpoint stays up while draining and the takeover endpoint
// refuses work while draining — a draining replica is a migration
// source, never a destination. All three require a configured Store
// (501 otherwise): without WALs there is nothing to transfer.

// ClusterSessionHeader carries a router-minted session ID on create
// requests (kept in sync with internal/cluster's constant of the same
// name; the packages stay import-independent on purpose).
const ClusterSessionHeader = "X-Cluster-Session-ID"

// clusterClient fetches peer session logs during takeover. The timeout
// bounds the fetch so a wedged source fails the handshake instead of
// hanging the adopter.
var clusterClient = &http.Client{Timeout: 15 * time.Second}

// sessionLogHandler serves one session's durable log, straight from the
// store. The write-ahead contract makes this complete: every
// acknowledged mutation is already in the WAL, so the log is the full
// acknowledged state even while the session is live.
func (s *Server) sessionLogHandler(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, "cluster: no store configured")
		return
	}
	log, err := s.cfg.Store.LoadSession(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, log)
}

// TakeoverRequest is the body of POST /cluster/sessions/{id}/takeover.
type TakeoverRequest struct {
	// Source is the base URL of the replica whose store holds the
	// session's log.
	Source string `json:"source"`
}

// takeoverHandler adopts a session from a peer: fetch its log, replay
// it through the normal session entry points, insert it into the live
// manager, open a local durable log, and ask the source to release its
// copy. Idempotent: a session already live here answers 200 without
// refetching, so racing takeover requests converge.
func (s *Server) takeoverHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, "cluster: no store configured")
		return
	}
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	var req TakeoverRequest
	if err := strictUnmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "cluster: takeover needs a source URL")
		return
	}

	// One takeover at a time: two adopters racing the same session
	// would double-create the durable log.
	s.takeoverMu.Lock()
	defer s.takeoverMu.Unlock()

	if _, ok := s.sessions.Get(id); ok {
		writeJSON(w, http.StatusOK, map[string]any{"status": "local", "session": id})
		return
	}

	log, err := fetchSessionLog(r, req.Source, id)
	if err != nil {
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("cluster: fetch %s from %s: %v", id, req.Source, err))
		return
	}
	sess, err := store.Replay(log)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if err := s.sessions.Adopt(sess); err != nil {
		sess.Close()
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	// Open the local durable log with a compacted snapshot before
	// answering: an acknowledged takeover must survive a restart of the
	// new owner. Stale local state from an earlier ownership is
	// replaced — the fetched log is strictly newer.
	snap, seq, err := sess.Checkpoint()
	if err == nil {
		_ = s.cfg.Store.DeleteSession(id)
		err = s.cfg.Store.CreateSession(id, seq, snap)
	}
	if err != nil {
		s.sessions.Delete(id)
		writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("cluster: durable log for %s: %v", id, err))
		return
	}
	s.attachSessionJournal(sess, 0)
	s.m.takeovers.Add(1)

	// Best-effort release on the source, so the session cannot
	// resurrect there on its next restart. A failure is survivable:
	// the router keeps routing here, and a resurrected stale copy is
	// unreachable until explicitly located.
	if err := releaseOnPeer(r, req.Source, id); err != nil {
		s.cfg.Logger.Warn("cluster: release on source failed",
			"session", id, "source", req.Source, "err", err)
	}
	s.cfg.Logger.Info("cluster: adopted session",
		"session", id, "source", req.Source, "seq", seq, "records", len(log.Records))
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "adopted",
		"session": id,
		"seq":     seq,
		"records": len(log.Records),
	})
}

// releaseHandler drops the local copy of a session a peer now owns:
// close the live session if any, delete the durable log. Idempotent.
func (s *Server) releaseHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sessions.Delete(id)
	if s.cfg.Store != nil {
		if err := s.cfg.Store.DeleteSession(id); err != nil {
			s.cfg.Logger.Warn("cluster: release delete", "session", id, "err", err)
		}
		s.dropDurable(id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "released", "session": id})
}

func fetchSessionLog(r *http.Request, source, id string) (store.SessionLog, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		source+"/cluster/sessions/"+id+"/log", nil)
	if err != nil {
		return store.SessionLog{}, err
	}
	resp, err := clusterClient.Do(req)
	if err != nil {
		return store.SessionLog{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return store.SessionLog{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	var log store.SessionLog
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		return store.SessionLog{}, err
	}
	if log.ID != id {
		return store.SessionLog{}, fmt.Errorf("log is for %q, wanted %q", log.ID, id)
	}
	return log, nil
}

func releaseOnPeer(r *http.Request, peer, id string) error {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		peer+"/cluster/sessions/"+id+"/release", nil)
	if err != nil {
		return err
	}
	resp, err := clusterClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}
