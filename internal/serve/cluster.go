package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// The replica half of the cluster protocol (the router half lives in
// internal/cluster). Five endpoints move a session between replicas
// using its per-session WAL as the unit of transfer:
//
//	GET  /cluster/sessions/{id}/log      serve the durable log (JSON SessionLog)
//	POST /cluster/sessions/{id}/seal     fence the live session (mutations rejected)
//	POST /cluster/sessions/{id}/unseal   lift the fence (takeover abort path)
//	POST /cluster/sessions/{id}/takeover seal+fetch from {"source"}, replay, adopt
//	POST /cluster/sessions/{id}/release  drop local copy after a peer adopted it
//
// The log, seal and unseal endpoints stay up while draining and the
// takeover endpoint refuses work while draining — a draining replica is
// a migration source, never a destination. Log and takeover require a
// configured Store (501 otherwise): without WALs there is nothing to
// transfer.
//
// Fencing: the adopter seals the source BEFORE fetching the log. Seal
// synchronizes on the session lock every mutation journals under, so
// once it returns, no edit can be acknowledged on the source that is
// not already in the WAL the fetch reads — the release cannot delete an
// acknowledged record the adopter never saw. A source whose sealed copy
// outlives an interrupted migration answers mutations with 409 plus the
// SessionSealedHeader; the router treats that as "complete the handover
// elsewhere", never as a client error.

// ClusterSessionHeader carries a router-minted session ID on create
// requests (kept in sync with internal/cluster's constant of the same
// name; the packages stay import-independent on purpose).
const ClusterSessionHeader = "X-Cluster-Session-ID"

// SessionSealedHeader marks a response served by a session copy that is
// sealed for migration (kept in sync with internal/cluster's constant
// of the same name). The router uses it to distinguish "this copy is a
// migration fossil — adopt elsewhere and retry" from ordinary 409s like
// "nothing to undo".
const SessionSealedHeader = "X-Session-Sealed"

// clusterClient fetches peer session logs during takeover. The timeout
// bounds the fetch so a wedged source fails the handshake instead of
// hanging the adopter.
var clusterClient = &http.Client{Timeout: 15 * time.Second}

// sessionLogHandler serves one session's durable log, straight from the
// store. The write-ahead contract makes this complete: every
// acknowledged mutation is already in the WAL, so the log is the full
// acknowledged state even while the session is live.
func (s *Server) sessionLogHandler(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, "cluster: no store configured")
		return
	}
	log, err := s.cfg.Store.LoadSession(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, log)
}

// TakeoverRequest is the body of POST /cluster/sessions/{id}/takeover.
type TakeoverRequest struct {
	// Source is the base URL of the replica whose store holds the
	// session's log.
	Source string `json:"source"`
}

// TakeoverPhase is one timed step of an adoption handshake, reported in
// the takeover response (success and abort alike) so the router can
// graft the adopter's timeline into the request trace that triggered
// the takeover. Offsets are relative to the handshake's own trace
// start; the proven success order is seal → fetch → replay → release,
// and every abort after a successful seal ends with unseal.
type TakeoverPhase struct {
	Phase    string  `json:"phase"`
	OffsetMS float64 `json:"offset_ms"`
	DurMS    float64 `json:"dur_ms"`
}

// writeTakeoverError answers a failed handshake with the phases that
// did run — an aborted takeover still has a timeline worth exporting.
func writeTakeoverError(w http.ResponseWriter, status int, msg string, phases []TakeoverPhase) {
	writeJSON(w, status, map[string]any{"error": msg, "phases": phases})
}

// takeoverHandler adopts a session from a peer: fetch its log, replay
// it through the normal session entry points, insert it into the live
// manager, open a local durable log, and ask the source to release its
// copy. Idempotent: a session already live here answers 200 without
// refetching, so racing takeover requests converge.
//
// The handshake is traced: an inbound traceparent (the router forwards
// its request trace's identity) is adopted, each step runs under a
// takeover.* span, and the response carries the ordered phase timings
// so the caller can reassemble the cross-process timeline.
func (s *Server) takeoverHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, "cluster: no store configured")
		return
	}
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	var req TakeoverRequest
	if err := strictUnmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "cluster: takeover needs a source URL")
		return
	}

	tr := obs.NewTrace("takeover")
	tr.SetLogger(s.cfg.Logger.With("session", id), s.cfg.SlowOp)
	if tid, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		tr.SetID(tid)
	}
	ctx := obs.WithTrace(r.Context(), tr)
	var phases []TakeoverPhase
	step := func(name string, fn func() error) error {
		_, sp := obs.Start(ctx, "takeover."+name)
		t0 := time.Now()
		err := fn()
		sp.End()
		phases = append(phases, TakeoverPhase{
			Phase:    name,
			OffsetMS: float64(t0.Sub(tr.Start())) / 1e6,
			DurMS:    float64(time.Since(t0)) / 1e6,
		})
		return err
	}
	defer tr.Finish()

	// One takeover at a time: two adopters racing the same session
	// would double-create the durable log.
	s.takeoverMu.Lock()
	defer s.takeoverMu.Unlock()

	if sess, ok := s.sessions.Get(id); ok && !sess.Sealed() {
		writeJSON(w, http.StatusOK, map[string]any{"status": "local", "session": id})
		return
	}
	// A sealed local copy is the fossil of an interrupted migration and
	// may be stale — fall through and replace it with the source's log.

	// Fence the source before reading its log: after seal returns, no
	// mutation can be acknowledged on the source that is not already in
	// the WAL we fetch next, so the release below can never delete an
	// acknowledged edit this replica did not replay.
	if err := step("seal", func() error { return sealOnPeer(r, req.Source, id) }); err != nil {
		writeTakeoverError(w, http.StatusBadGateway,
			fmt.Sprintf("cluster: seal %s on %s: %v", id, req.Source, err), phases)
		return
	}
	// Every abort past this point lifts the fence it placed, and the
	// unseal shows up in the phase timeline as the abort marker.
	abortUnseal := func() {
		_ = step("unseal", func() error { s.unsealSource(r, req.Source, id); return nil })
	}
	var log store.SessionLog
	if err := step("fetch", func() (err error) {
		log, err = fetchSessionLog(r, req.Source, id)
		return
	}); err != nil {
		abortUnseal()
		writeTakeoverError(w, http.StatusBadGateway,
			fmt.Sprintf("cluster: fetch %s from %s: %v", id, req.Source, err), phases)
		return
	}
	// The replay step covers rebuilding the session, dropping any local
	// sealed fossil, opening the durable log with a compacted snapshot
	// (an acknowledged takeover must survive a restart of the new
	// owner), and inserting the session into the live manager.
	var seq uint64
	replayStatus := http.StatusInternalServerError
	if err := step("replay", func() error {
		sess, err := store.Replay(log)
		if err != nil {
			return err
		}
		if old, ok := s.sessions.Get(id); ok && old.Sealed() {
			s.sessions.Delete(id)
			s.dropDurable(id)
		}
		var snap []byte
		snap, seq, err = sess.Checkpoint()
		if err == nil {
			_ = s.cfg.Store.DeleteSession(id)
			err = s.cfg.Store.CreateSession(id, seq, snap)
		}
		if err != nil {
			return fmt.Errorf("cluster: durable log for %s: %v", id, err)
		}
		// The journal hook goes in BEFORE the session becomes reachable
		// via the live manager: a mutation accepted in the gap between
		// Adopt and SetJournal would be acknowledged with no WAL record
		// behind it and silently vanish on the next restart.
		s.attachSessionJournal(sess, 0)
		if err := s.sessions.Adopt(sess); err != nil {
			s.dropDurable(id)
			_ = s.cfg.Store.DeleteSession(id)
			sess.Close()
			replayStatus = http.StatusServiceUnavailable
			return err
		}
		return nil
	}); err != nil {
		abortUnseal()
		writeTakeoverError(w, replayStatus, err.Error(), phases)
		return
	}
	s.m.takeovers.Add(1)

	// Best-effort release on the source, so the session cannot
	// resurrect there on its next restart. A failure is survivable:
	// the router keeps routing here, and a resurrected stale copy is
	// unreachable until explicitly located.
	if err := step("release", func() error { return releaseOnPeer(r, req.Source, id) }); err != nil {
		s.cfg.Logger.Warn("cluster: release on source failed",
			"session", id, "source", req.Source, "err", err)
	}
	s.cfg.Logger.Info("cluster: adopted session",
		"session", id, "source", req.Source, "seq", seq, "records", len(log.Records))
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "adopted",
		"session": id,
		"seq":     seq,
		"records": len(log.Records),
		"phases":  phases,
	})
}

// sealHandler fences the live session for migration (see the package
// comment). Answering 200 guarantees no further mutation will be
// acknowledged here until unseal or release; a session that is not live
// (recovering replica, drained, never existed) answers 200 "idle" — a
// copy that is not live cannot acknowledge anything either, and the
// adopter's log fetch decides existence.
func (s *Server) sealHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if sess, ok := s.sessions.Get(id); ok {
		sess.Seal()
		s.cfg.Logger.Info("cluster: sealed session", "session", id, "seq", sess.Seq())
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "sealed", "session": id, "seq": sess.Seq(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "idle", "session": id})
}

// unsealHandler lifts the migration fence — the abort path of an
// adopter that sealed this replica and then failed before adopting.
// Idempotent; unknown sessions answer 200 like seal.
func (s *Server) unsealHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if sess, ok := s.sessions.Get(id); ok {
		sess.Unseal()
		s.cfg.Logger.Info("cluster: unsealed session", "session", id)
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "unsealed", "session": id})
}

// unsealSource best-effort lifts the fence on a source this takeover
// sealed but failed to adopt from. If the unseal itself fails, the
// source's sealed copy answers mutations with SessionSealedHeader and
// the router completes the handover on the next request — sealed is
// safe, just not live.
func (s *Server) unsealSource(r *http.Request, source, id string) {
	if err := unsealOnPeer(r, source, id); err != nil {
		s.cfg.Logger.Warn("cluster: unseal on source failed",
			"session", id, "source", source, "err", err)
	}
}

// releaseHandler drops the local copy of a session a peer now owns:
// close the live session if any, delete the durable log. Idempotent.
func (s *Server) releaseHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sessions.Delete(id)
	if s.cfg.Store != nil {
		if err := s.cfg.Store.DeleteSession(id); err != nil {
			s.cfg.Logger.Warn("cluster: release delete", "session", id, "err", err)
		}
		s.dropDurable(id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "released", "session": id})
}

func fetchSessionLog(r *http.Request, source, id string) (store.SessionLog, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		source+"/cluster/sessions/"+id+"/log", nil)
	if err != nil {
		return store.SessionLog{}, err
	}
	resp, err := clusterClient.Do(req)
	if err != nil {
		return store.SessionLog{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return store.SessionLog{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	var log store.SessionLog
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		return store.SessionLog{}, err
	}
	if log.ID != id {
		return store.SessionLog{}, fmt.Errorf("log is for %q, wanted %q", log.ID, id)
	}
	return log, nil
}

func releaseOnPeer(r *http.Request, peer, id string) error {
	return postToPeer(r, peer, id, "release")
}

func sealOnPeer(r *http.Request, peer, id string) error {
	return postToPeer(r, peer, id, "seal")
}

func unsealOnPeer(r *http.Request, peer, id string) error {
	return postToPeer(r, peer, id, "unseal")
}

func postToPeer(r *http.Request, peer, id, verb string) error {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		peer+"/cluster/sessions/"+id+"/"+verb, nil)
	if err != nil {
		return err
	}
	resp, err := clusterClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	return nil
}
