package serve

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/buck"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Request-size guards for the batch endpoints: the explorer and the Monte
// Carlo analysis multiply whole EMI predictions, so unbounded parameters
// would let one request monopolize the workers for hours.
const (
	maxExplorePop    = 64
	maxExploreGens   = 64
	maxExploreSweep  = 8
	maxAnnealIters   = 10000
	maxYieldSamples  = 2048
	maxRealizedFront = 8
)

// MapEntry binds one design component to its catalog model in a
// ProjectSpec (see components.ParseSpec for the spec vocabulary; a
// trailing ":tol=10%" feeds the Monte Carlo tolerance analysis).
type MapEntry struct {
	Spec     string `json:"spec"`               // catalog spec, e.g. "x2cap:1.5u:tol=10%"
	Inductor string `json:"inductor,omitempty"` // circuit inductor of its magnetic part
}

// ProjectSpec names or assembles the core.Project a batch job works on:
// either a builtin example ("buck", the paper's automotive converter) or
// an explicit design + netlist + component map.
type ProjectSpec struct {
	Builtin string              `json:"builtin,omitempty"` // "buck"
	Design  string              `json:"design,omitempty"`  // ASCII design file text
	Netlist string              `json:"netlist,omitempty"` // SPICE-style netlist text
	Map     map[string]MapEntry `json:"map,omitempty"`     // ref → model binding
	Sources []string            `json:"sources,omitempty"` // switching V/I PULSE elements
	Measure string              `json:"measure,omitempty"` // measurement node
}

// build assembles the project. The second return carries the tolerance
// bands embedded in the component specs, keyed by the mapped circuit
// inductor — the Monte Carlo analysis folds them into its TolOf unless
// the request overrides them.
func (ps *ProjectSpec) build() (*core.Project, map[string]float64, error) {
	if ps.Builtin != "" {
		if ps.Design != "" || ps.Netlist != "" || len(ps.Map) > 0 {
			return nil, nil, fmt.Errorf("project: builtin excludes design/netlist/map")
		}
		if ps.Builtin != "buck" {
			return nil, nil, fmt.Errorf("project: unknown builtin %q", ps.Builtin)
		}
		return buck.Project(), nil, nil
	}
	if ps.Design == "" || ps.Netlist == "" || ps.Measure == "" || len(ps.Sources) == 0 {
		return nil, nil, fmt.Errorf("project: design, netlist, sources and measure are required")
	}
	d, err := layout.ReadString(ps.Design)
	if err != nil {
		return nil, nil, err
	}
	ckt, err := netlist.Parse(strings.NewReader(ps.Netlist))
	if err != nil {
		return nil, nil, err
	}
	proj := &core.Project{
		Design: d, Circuit: ckt,
		Models:     map[string]components.Model{},
		InductorOf: map[string]string{},
		Sources:    ps.Sources, MeasureNode: ps.Measure,
	}
	specTols := map[string]float64{}
	for ref, ent := range ps.Map {
		if d.Find(ref) == nil {
			return nil, nil, fmt.Errorf("project: mapped ref %q not in design", ref)
		}
		m, tol, err := components.ParseSpecTol(ent.Spec)
		if err != nil {
			return nil, nil, fmt.Errorf("project: %s: %w", ref, err)
		}
		proj.Models[ref] = m
		if ent.Inductor != "" {
			if ckt.Find(ent.Inductor) == nil {
				return nil, nil, fmt.Errorf("project: %s: inductor %q not in netlist", ref, ent.Inductor)
			}
			proj.InductorOf[ref] = ent.Inductor
			if tol > 0 {
				specTols[ent.Inductor] = tol
			}
		}
	}
	return proj, specTols, nil
}

// ExploreRequest asks for a multi-objective design-space exploration: an
// NSGA-II run over placement tournaments and component-value sweeps,
// scored on the requested objective vector. Intermediate Pareto fronts
// stream on GET /v1/jobs/{id}/events as "front" events.
type ExploreRequest struct {
	Project     ProjectSpec          `json:"project"`
	Objectives  []string             `json:"objectives,omitempty"`  // subset of margin|area|net|violations
	Population  int                  `json:"population,omitempty"`  // 0 = 24, max 64
	Generations int                  `json:"generations,omitempty"` // 0 = 10, max 64
	Seed        int64                `json:"seed,omitempty"`        // run is bit-reproducible in it
	MaxFreq     float64              `json:"max_freq,omitempty"`    // Hz; 0 = CISPR band stop
	GridMM      float64              `json:"grid_mm,omitempty"`     // placement raster; 0 = auto
	AnnealIters int                  `json:"anneal_iters,omitempty"`
	Sweep       []explore.SweepParam `json:"sweep,omitempty"`
	ComputeOpts
}

// CandidateView is one Pareto-front member in an ExploreResponse.
type CandidateView struct {
	Genes      []float64          `json:"genes"`
	Objectives map[string]float64 `json:"objectives"`
	Design     string             `json:"design,omitempty"` // placed layout (first few members only)
}

// ExploreResponse carries the final Pareto front.
type ExploreResponse struct {
	Objectives  []string        `json:"objectives"`
	Front       []CandidateView `json:"front"`
	Generations int             `json:"generations"`
	Evaluations int             `json:"evaluations"`
	ElapsedMS   float64         `json:"elapsed_ms"`
}

func runExplore(ctx context.Context, req []byte) (any, error) {
	var r ExploreRequest
	if err := strictUnmarshal(req, &r); err != nil {
		return nil, err
	}
	if r.Population > maxExplorePop {
		return nil, fmt.Errorf("explore: population %d exceeds %d", r.Population, maxExplorePop)
	}
	if r.Generations > maxExploreGens {
		return nil, fmt.Errorf("explore: generations %d exceeds %d", r.Generations, maxExploreGens)
	}
	if len(r.Sweep) > maxExploreSweep {
		return nil, fmt.Errorf("explore: %d sweep axes exceed %d", len(r.Sweep), maxExploreSweep)
	}
	if r.AnnealIters > maxAnnealIters {
		return nil, fmt.Errorf("explore: anneal_iters %d exceeds %d", r.AnnealIters, maxAnnealIters)
	}
	mode, err := r.resolve()
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	proj, _, err := r.Project.build()
	if err != nil {
		return nil, err
	}
	proj.Solver = mode
	proj.CouplingTheta = r.Theta
	prob := &explore.DesignProblem{
		Project:     proj,
		Objectives:  r.Objectives,
		Sweep:       r.Sweep,
		MaxFreq:     r.MaxFreq,
		GridStep:    r.GridMM * 1e-3,
		AnnealIters: r.AnnealIters,
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	res, err := explore.Run(ctx, prob, explore.Config{
		Pop:         r.Population,
		Generations: r.Generations,
		Seed:        r.Seed,
	}, func(g explore.Generation) {
		Publish(ctx, "front", g)
	})
	if err != nil {
		return nil, err
	}
	names := prob.ObjectiveNames()
	resp := &ExploreResponse{
		Objectives:  names,
		Generations: res.Generations,
		Evaluations: res.Evaluations,
		ElapsedMS:   float64(res.Elapsed) / float64(time.Millisecond),
	}
	for i, ind := range res.Front {
		cv := CandidateView{Genes: ind.Genes, Objectives: map[string]float64{}}
		for k, name := range names {
			cv.Objectives[name] = ind.Objectives[k]
		}
		// Realizing a candidate re-runs its placement; bound the work to
		// the head of the front (sorted best-first by objective vector).
		if i < maxRealizedFront && feasible(ind.Objectives) {
			if d, rerr := prob.Realize(ctx, ind.Genes); rerr == nil {
				var sb strings.Builder
				if werr := layout.Write(&sb, d); werr == nil {
					cv.Design = sb.String()
				}
			} else if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		resp.Front = append(resp.Front, cv)
	}
	return resp, nil
}

// feasible reports whether a candidate's objectives are real scores, not
// the unplaceable-candidate penalty vector.
func feasible(objs []float64) bool {
	for _, v := range objs {
		if v >= 1e9 || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// YieldRequest asks for a Monte Carlo EMI yield analysis: component
// values and extracted couplings are perturbed within tolerance bands and
// the fraction of builds meeting the CISPR mask is estimated, per
// frequency bin and overall. Running estimates stream on
// GET /v1/jobs/{id}/events as "yield" events.
type YieldRequest struct {
	Project     ProjectSpec        `json:"project"`
	Samples     int                `json:"samples,omitempty"` // 0 = 200, max 2048
	Batch       int                `json:"batch,omitempty"`   // emit granularity; 0 = 32
	Seed        int64              `json:"seed,omitempty"`
	MaxFreq     float64            `json:"max_freq,omitempty"`
	DefaultTol  float64            `json:"default_tol,omitempty"`  // 0 = 0.10
	CouplingTol float64            `json:"coupling_tol,omitempty"` // 0 = 0.20
	TolOf       map[string]float64 `json:"tol_of,omitempty"`       // element → band, overrides spec tols

	// Autoplace places the design first (required when the project's
	// design has unplaced movable components, e.g. the buck builtin);
	// PlaceSeed seeds that placement.
	Autoplace bool  `json:"autoplace,omitempty"`
	PlaceSeed int64 `json:"place_seed,omitempty"`
	ComputeOpts
}

// YieldResponse summarizes the Monte Carlo run.
type YieldResponse struct {
	Samples   int     `json:"samples"`
	Pass      int     `json:"pass"`
	Yield     float64 `json:"yield"`
	CILo      float64 `json:"ci_lo"`
	CIHi      float64 `json:"ci_hi"`
	Perturbed int     `json:"perturbed"`
	Batches   int     `json:"batches"`

	FreqsHz []float64 `json:"freqs_hz"`
	BinPass []float64 `json:"bin_pass"`
	BinLo   []float64 `json:"bin_lo"`
	BinHi   []float64 `json:"bin_hi"`

	MarginP05DB float64 `json:"margin_p05_db"` // 5th-percentile worst margin
	MarginP50DB float64 `json:"margin_p50_db"`
	MarginP95DB float64 `json:"margin_p95_db"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

func runYield(ctx context.Context, req []byte) (any, error) {
	var r YieldRequest
	if err := strictUnmarshal(req, &r); err != nil {
		return nil, err
	}
	if r.Samples > maxYieldSamples {
		return nil, fmt.Errorf("yield: samples %d exceeds %d", r.Samples, maxYieldSamples)
	}
	mode, err := r.resolve()
	if err != nil {
		return nil, fmt.Errorf("yield: %w", err)
	}
	proj, specTols, err := r.Project.build()
	if err != nil {
		return nil, err
	}
	proj.Solver = mode
	proj.CouplingTheta = r.Theta
	if r.Autoplace || hasUnplaced(proj.Design) {
		d := proj.Design.Clone()
		if _, err := place.AutoPlaceCtx(ctx, d, place.Options{Seed: r.PlaceSeed}); err != nil {
			return nil, fmt.Errorf("yield: autoplace: %w", err)
		}
		p := *proj
		p.Design = d
		proj = &p
	}
	tolOf := map[string]float64{}
	for name, tol := range specTols {
		tolOf[name] = tol
	}
	for name, tol := range r.TolOf {
		tolOf[name] = tol
	}
	curve, err := explore.Yield(ctx, proj, explore.YieldOptions{
		Samples:     r.Samples,
		Batch:       r.Batch,
		Seed:        r.Seed,
		MaxFreq:     r.MaxFreq,
		DefaultTol:  r.DefaultTol,
		CouplingTol: r.CouplingTol,
		TolOf:       tolOf,
	}, func(e explore.YieldEstimate) {
		Publish(ctx, "yield", e)
	})
	if err != nil {
		return nil, err
	}
	return &YieldResponse{
		Samples: curve.Samples, Pass: curve.Pass, Yield: curve.Yield,
		CILo: curve.CILo, CIHi: curve.CIHi,
		Perturbed: curve.Perturbed, Batches: curve.Batches,
		FreqsHz: curve.Freqs, BinPass: curve.BinPass,
		BinLo: curve.BinLo, BinHi: curve.BinHi,
		MarginP05DB: curve.Percentile(0.05),
		MarginP50DB: curve.Percentile(0.50),
		MarginP95DB: curve.Percentile(0.95),
		ElapsedMS:   float64(curve.Elapsed) / float64(time.Millisecond),
	}, nil
}

// hasUnplaced reports whether any movable component is still unplaced.
func hasUnplaced(d *layout.Design) bool {
	for _, c := range d.Comps {
		if !c.Preplaced && !c.Placed {
			return true
		}
	}
	return false
}
