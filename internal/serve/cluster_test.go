package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/session"
	"repro/internal/store"
)

// clusterPair spins up two Servers with independent stores behind
// httptest listeners — the two-replica fixture the takeover handshake
// tests run against.
func clusterPair(t *testing.T) (src, dst *Server, srcURL, dstURL string) {
	t.Helper()
	src = testServer(t, Config{Store: store.NewMemory(), Runners: map[Kind]Runner{}})
	dst = testServer(t, Config{Store: store.NewMemory(), Runners: map[Kind]Runner{}})
	ts1 := httptest.NewServer(src.Handler())
	ts2 := httptest.NewServer(dst.Handler())
	t.Cleanup(ts1.Close)
	t.Cleanup(ts2.Close)
	return src, dst, ts1.URL, ts2.URL
}

func postWithHeader(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// createClusterSession creates a synthetic durable session under a
// router-style cs- ID and applies a few edits, returning the final seq.
func createClusterSession(t *testing.T, baseURL, id string, edits []string) uint64 {
	t.Helper()
	resp, body := postWithHeader(t, baseURL+"/v1/sessions",
		`{"synthetic":{"n":6,"rules":4,"groups":2,"w_mm":120,"h_mm":100}}`,
		map[string]string{ClusterSessionHeader: id})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &created); created.ID != id {
		t.Fatalf("created session %q, want router-minted %q", created.ID, id)
	}
	var last struct {
		Seq uint64 `json:"seq"`
	}
	for _, e := range edits {
		kind := "edits"
		if e == "undo" || e == "redo" {
			kind, e = e, `{}`
		}
		resp, body := postWithHeader(t, baseURL+"/v1/sessions/"+id+"/"+kind, e, nil)
		switch resp.StatusCode {
		case http.StatusOK:
			json.Unmarshal(body, &last)
		case http.StatusConflict:
			// The scripted redo-after-new-edit is rejected by design:
			// an applied edit clears the redo stack. Nothing journaled.
		default:
			t.Fatalf("edit status %d: %s", resp.StatusCode, body)
		}
	}
	return last.Seq
}

var clusterEdits = []string{
	`{"op":"param","param":"clearance","value_mm":0.4}`,
	`{"op":"param","param":"clearance","value_mm":0.8}`,
	"undo",
	`{"op":"param","param":"clearance","value_mm":1.2}`,
	"redo", // rejected (409): redo stack cleared by the new edit — not journaled
	`{"op":"param","param":"clearance","value_mm":0.6}`,
}

// ringOf drains a session's replay ring through the public Subscribe
// API (replayed deltas are pre-buffered; no live edits are flowing).
func ringOf(t *testing.T, s *Server, id string) []session.Delta {
	t.Helper()
	sess, ok := s.sessions.Get(id)
	if !ok {
		t.Fatalf("session %s not live", id)
	}
	ch, cancel := sess.Subscribe(0)
	defer cancel()
	var out []session.Delta
	for {
		select {
		case d := <-ch:
			out = append(out, d)
		default:
			return out
		}
	}
}

// TestClusterTakeoverHandshake is the full cross-replica migration:
// fetch the session's WAL from the source, replay, adopt, journal
// locally, release the source — and keep accepting edits afterwards.
func TestClusterTakeoverHandshake(t *testing.T) {
	srcS, dstS, srcURL, dstURL := clusterPair(t)
	const id = "cs-takeover01"
	edits := clusterEdits
	seq := createClusterSession(t, srcURL, id, edits)
	if seq == 0 {
		t.Fatal("no edits applied")
	}
	srcSnap := getBody(t, srcURL+"/v1/sessions/"+id+"/snapshot")
	srcRing := ringOf(t, srcS, id)

	resp, body := postWithHeader(t, dstURL+"/cluster/sessions/"+id+"/takeover",
		fmt.Sprintf(`{"source":%q}`, srcURL), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover status %d: %s", resp.StatusCode, body)
	}
	var tk struct {
		Status string          `json:"status"`
		Seq    uint64          `json:"seq"`
		Phases []TakeoverPhase `json:"phases"`
	}
	if json.Unmarshal(body, &tk); tk.Status != "adopted" || tk.Seq != seq {
		t.Fatalf("takeover answered %s, want adopted at seq %d", body, seq)
	}

	// The adopter reports its phases in the proven handshake order.
	var phaseNames []string
	for _, ph := range tk.Phases {
		phaseNames = append(phaseNames, ph.Phase)
		if ph.DurMS < 0 || ph.OffsetMS < 0 {
			t.Errorf("phase %s has negative timing: %+v", ph.Phase, ph)
		}
	}
	if strings.Join(phaseNames, ",") != "seal,fetch,replay,release" {
		t.Fatalf("takeover phases %v, want seal,fetch,replay,release", phaseNames)
	}

	// The adopted session is byte-identical, ring included.
	dstSnap := getBody(t, dstURL+"/v1/sessions/"+id+"/snapshot")
	if !bytes.Equal(srcSnap, dstSnap) {
		t.Fatalf("adopted snapshot differs:\nsrc:\n%s\ndst:\n%s", srcSnap, dstSnap)
	}
	dstRing := ringOf(t, dstS, id)
	ja, _ := json.Marshal(srcRing)
	jb, _ := json.Marshal(dstRing)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("adopted SSE replay ring differs:\nsrc: %s\ndst: %s", ja, jb)
	}

	// The source released its copy: live session and durable log gone.
	resp, _ = postWithHeader(t, srcURL+"/v1/sessions/"+id+"/edits",
		`{"op":"param","param":"clearance","value_mm":0.9}`, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("source still serves the session after release: %d", resp.StatusCode)
	}
	if _, err := srcS.cfg.Store.LoadSession(id); err == nil {
		t.Fatal("source store still holds the session log after release")
	}

	// The new owner keeps working, durably: edit, restart on the same
	// store, and the edit is still there.
	var afterEdit struct {
		Seq uint64 `json:"seq"`
	}
	resp, body = postWithHeader(t, dstURL+"/v1/sessions/"+id+"/edits",
		`{"op":"param","param":"clearance","value_mm":1.5}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-takeover edit status %d: %s", resp.StatusCode, body)
	}
	if json.Unmarshal(body, &afterEdit); afterEdit.Seq != seq+1 {
		t.Fatalf("post-takeover seq %d, want %d", afterEdit.Seq, seq+1)
	}
	restarted := testServer(t, Config{Store: dstS.cfg.Store, Runners: map[Kind]Runner{}})
	if rec := restarted.RecoveryReport(); rec.Sessions != 1 {
		t.Fatalf("new owner's restart recovered %d sessions, want 1", rec.Sessions)
	}
	sess, ok := restarted.sessions.Get(id)
	if !ok || sess.Seq() != seq+1 {
		t.Fatalf("post-takeover edit not durable on the new owner (live=%v)", ok)
	}

	// Adoption shows in the replica metrics.
	var buf bytes.Buffer
	if err := dstS.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "emiserve_cluster_adoptions_total 1") {
		t.Fatal("metrics missing emiserve_cluster_adoptions_total 1")
	}
}

// TestClusterTakeoverIdempotent: a takeover for a session already live
// here answers 200 "local" without refetching — racing adopters
// converge instead of double-creating logs.
func TestClusterTakeoverIdempotent(t *testing.T) {
	_, _, srcURL, dstURL := clusterPair(t)
	const id = "cs-idem01"
	createClusterSession(t, srcURL, id, clusterEdits[:2])

	for i, wantStatus := range []string{"adopted", "local"} {
		resp, body := postWithHeader(t, dstURL+"/cluster/sessions/"+id+"/takeover",
			fmt.Sprintf(`{"source":%q}`, srcURL), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("takeover %d status %d: %s", i, resp.StatusCode, body)
		}
		var tk struct {
			Status string `json:"status"`
		}
		if json.Unmarshal(body, &tk); tk.Status != wantStatus {
			t.Fatalf("takeover %d status %q, want %q", i, tk.Status, wantStatus)
		}
	}
}

// TestClusterTakeoverUnreachableSource: the handshake must fail with
// 502 when the source's store is unreachable — the adopter never
// fabricates an empty session for an ID it cannot fetch.
func TestClusterTakeoverUnreachableSource(t *testing.T) {
	_, _, _, dstURL := clusterPair(t)
	resp, body := postWithHeader(t, dstURL+"/cluster/sessions/cs-ghost01/takeover",
		`{"source":"http://127.0.0.1:1"}`, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d: %s, want 502", resp.StatusCode, body)
	}
}

// TestClusterTakeoverRefusedWhileDraining: a draining replica is a
// migration source, never a destination.
func TestClusterTakeoverRefusedWhileDraining(t *testing.T) {
	srcS, _, srcURL, dstURL := clusterPair(t)
	const id = "cs-drain01"
	createClusterSession(t, srcURL, id, clusterEdits[:2])
	drainServer(t, srcS)

	// The draining source still serves its log...
	resp, _ := http.Get(srcURL + "/cluster/sessions/" + id + "/log")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining source log status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	// ...so a takeover FROM it works,
	resp2, body := postWithHeader(t, dstURL+"/cluster/sessions/"+id+"/takeover",
		fmt.Sprintf(`{"source":%q}`, srcURL), nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("takeover from draining source: %d %s", resp2.StatusCode, body)
	}
	// ...but a takeover ONTO it is refused with Retry-After.
	resp3, body := postWithHeader(t, srcURL+"/cluster/sessions/"+id+"/takeover",
		fmt.Sprintf(`{"source":%q}`, dstURL), nil)
	if resp3.StatusCode != http.StatusServiceUnavailable || resp3.Header.Get("Retry-After") == "" {
		t.Fatalf("takeover onto draining replica: %d %s Retry-After %q",
			resp3.StatusCode, body, resp3.Header.Get("Retry-After"))
	}
}

// TestClusterEndpointsNeedStore: without WALs there is nothing to
// transfer — 501, not a silent no-op.
func TestClusterEndpointsNeedStore(t *testing.T) {
	s := testServer(t, Config{Runners: map[Kind]Runner{}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/cluster/sessions/cs-x/log")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("log without store: %d, want 501", resp.StatusCode)
	}
	resp.Body.Close()
	resp, body := postWithHeader(t, ts.URL+"/cluster/sessions/cs-x/takeover",
		`{"source":"http://127.0.0.1:1"}`, nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("takeover without store: %d %s, want 501", resp.StatusCode, body)
	}
}

// TestCreateSessionClusterIDValidation: the router-minted ID header is
// honored only in its own cs- namespace, so it can never collide with
// (or spoof) locally minted s<N> IDs.
func TestCreateSessionClusterIDValidation(t *testing.T) {
	s := testServer(t, Config{Runners: map[Kind]Runner{}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postWithHeader(t, ts.URL+"/v1/sessions",
		`{"synthetic":{"n":5,"rules":3,"groups":2,"w_mm":100,"h_mm":80}}`,
		map[string]string{ClusterSessionHeader: "s7"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("s7 cluster ID accepted: %d %s", resp.StatusCode, body)
	}
}

// TestClusterSealFencesEdits: sealing a session stops every mutation
// with 409 + X-Session-Sealed (so the router can tell a migration
// fence from an ordinary conflict), keeps reads flagged but served,
// refuses deletion, and unseal restores normal service. Sealing an
// unknown session answers 200 "idle" — a copy that is not live cannot
// acknowledge anything, so the fence is trivially in place.
func TestClusterSealFencesEdits(t *testing.T) {
	s := testServer(t, Config{Store: store.NewMemory(), Runners: map[Kind]Runner{}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	const id = "cs-seal01"
	createClusterSession(t, ts.URL, id, clusterEdits[:2])

	resp, body := postWithHeader(t, ts.URL+"/cluster/sessions/"+id+"/seal", "", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"sealed"`) {
		t.Fatalf("seal: %d %s", resp.StatusCode, body)
	}

	edit := `{"op":"param","param":"clearance","value_mm":0.5}`
	resp, body = postWithHeader(t, ts.URL+"/v1/sessions/"+id+"/edits", edit, nil)
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(SessionSealedHeader) == "" {
		t.Fatalf("edit on sealed session: %d %s sealed-header %q, want 409 + header",
			resp.StatusCode, body, resp.Header.Get(SessionSealedHeader))
	}
	resp, body = postWithHeader(t, ts.URL+"/v1/sessions/"+id+"/undo", `{}`, nil)
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(SessionSealedHeader) == "" {
		t.Fatalf("undo on sealed session: %d %s, want 409 + sealed header", resp.StatusCode, body)
	}

	// Reads still answer, flagged sealed.
	getResp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK || getResp.Header.Get(SessionSealedHeader) == "" {
		t.Fatalf("read on sealed session: %d sealed-header %q, want 200 + header",
			getResp.StatusCode, getResp.Header.Get(SessionSealedHeader))
	}

	// A sealed copy cannot be deleted through the public API — only the
	// cluster release endpoint drops it.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusConflict {
		t.Fatalf("delete of sealed session: %d, want 409", delResp.StatusCode)
	}

	resp, body = postWithHeader(t, ts.URL+"/cluster/sessions/"+id+"/unseal", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unseal: %d %s", resp.StatusCode, body)
	}
	resp, body = postWithHeader(t, ts.URL+"/v1/sessions/"+id+"/edits", edit, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit after unseal: %d %s, want 200", resp.StatusCode, body)
	}

	resp, body = postWithHeader(t, ts.URL+"/cluster/sessions/cs-nope01/seal", "", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"idle"`) {
		t.Fatalf("seal of unknown session: %d %s, want 200 idle", resp.StatusCode, body)
	}
}

// TestClusterTakeoverReplacesSealedFossil: a takeover request arriving
// at a replica that holds a SEALED local copy must not answer "local"
// — the fossil of an interrupted migration may be stale. It refetches
// the authoritative log from the source and replaces the fossil.
func TestClusterTakeoverReplacesSealedFossil(t *testing.T) {
	srcS, dstS, srcURL, dstURL := clusterPair(t)
	const id = "cs-fossil01"

	// dst holds a short, sealed copy (what an interrupted earlier
	// migration leaves behind); src holds the authoritative log.
	createClusterSession(t, dstURL, id, clusterEdits[:1])
	resp, body := postWithHeader(t, dstURL+"/cluster/sessions/"+id+"/seal", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seal fossil: %d %s", resp.StatusCode, body)
	}
	seq := createClusterSession(t, srcURL, id, clusterEdits)

	resp, body = postWithHeader(t, dstURL+"/cluster/sessions/"+id+"/takeover",
		fmt.Sprintf(`{"source":%q}`, srcURL), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover: %d %s", resp.StatusCode, body)
	}
	var tk struct {
		Status string `json:"status"`
		Seq    uint64 `json:"seq"`
	}
	if json.Unmarshal(body, &tk); tk.Status != "adopted" || tk.Seq != seq {
		t.Fatalf("takeover answered %s, want adopted at the source's seq %d — a sealed fossil must be replaced, not resurrected", body, seq)
	}
	sess, ok := dstS.sessions.Get(id)
	if !ok || sess.Sealed() || sess.Seq() != seq {
		t.Fatalf("adopted session live=%v sealed=%v seq=%d, want live unsealed at %d",
			ok, ok && sess.Sealed(), sess.Seq(), seq)
	}
	if _, err := srcS.cfg.Store.LoadSession(id); err == nil {
		t.Fatal("source store still holds the session log after release")
	}
}

// TestClusterTakeoverAbortUnsealsSource: when the handshake fails after
// the fence went up (here: the source cannot serve its log), the
// adopter must lift the fence again — an aborted takeover must not
// leave the source's session refusing edits forever.
func TestClusterTakeoverAbortUnsealsSource(t *testing.T) {
	src := testServer(t, Config{Runners: map[Kind]Runner{}}) // no store: log endpoint 501s
	dst := testServer(t, Config{Store: store.NewMemory(), Runners: map[Kind]Runner{}})
	ts1 := httptest.NewServer(src.Handler())
	ts2 := httptest.NewServer(dst.Handler())
	t.Cleanup(ts1.Close)
	t.Cleanup(ts2.Close)
	const id = "cs-abort01"
	createClusterSession(t, ts1.URL, id, clusterEdits[:2])

	resp, body := postWithHeader(t, ts2.URL+"/cluster/sessions/"+id+"/takeover",
		fmt.Sprintf(`{"source":%q}`, ts1.URL), nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("takeover with unreadable source log: %d %s, want 502", resp.StatusCode, body)
	}
	// The error body reports the phases that ran, ending with the
	// unseal that lifted the fence.
	var tk struct {
		Phases []TakeoverPhase `json:"phases"`
	}
	if err := json.Unmarshal(body, &tk); err != nil {
		t.Fatalf("abort body not JSON: %v: %s", err, body)
	}
	if n := len(tk.Phases); n == 0 || tk.Phases[n-1].Phase != "unseal" {
		t.Fatalf("abort phases %+v, want trailing unseal", tk.Phases)
	}
	// The abort lifted the fence: the source keeps serving edits.
	resp, body = postWithHeader(t, ts1.URL+"/v1/sessions/"+id+"/edits",
		`{"op":"param","param":"clearance","value_mm":0.7}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit on source after aborted takeover: %d %s, want 200", resp.StatusCode, body)
	}
}

// drainServer drains s and fails the test on error.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClusterKillPointTakeoverSweep kills the session owner at every
// WAL record boundary and asserts the adopting replica replays the
// truncated image to exactly the acknowledged state: snapshot bytes
// and SSE replay ring identical to a reference recovery of the same
// image. This is the cluster equivalent of the single-node kill-point
// sweep — the unit of transfer is the per-session WAL, so a takeover
// from ANY acknowledged prefix must be exact.
func TestClusterKillPointTakeoverSweep(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir, store.SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	owner := New(Config{Store: fs, Runners: map[Kind]Runner{}})
	ownerTS := httptest.NewServer(owner.Handler())
	const id = "cs-killpoint01"

	// Record the WAL size after the snapshot record and after every
	// acknowledged edit — the kill points.
	walRel := filepath.Join("sessions", id+".wal")
	walPath := filepath.Join(dir, walRel)
	sizeNow := func() int64 {
		st, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	resp, body := postWithHeader(t, ownerTS.URL+"/v1/sessions",
		`{"synthetic":{"n":6,"rules":4,"groups":2,"w_mm":120,"h_mm":100}}`,
		map[string]string{ClusterSessionHeader: id})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	boundaries := []int64{sizeNow()}
	for _, e := range clusterEdits {
		kind := "edits"
		if e == "undo" || e == "redo" {
			kind, e = e, `{}`
		}
		resp, _ := postWithHeader(t, ownerTS.URL+"/v1/sessions/"+id+"/"+kind, e, nil)
		if resp.StatusCode == http.StatusOK {
			boundaries = append(boundaries, sizeNow())
		}
	}
	ownerTS.Close()
	drainServer(t, owner)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if len(boundaries) < 4 {
		t.Fatalf("only %d kill points", len(boundaries))
	}

	for i, size := range boundaries {
		clone := filepath.Join(t.TempDir(), fmt.Sprintf("kill%02d", i))
		if err := faultfs.CloneTruncated(dir, clone, walRel, size); err != nil {
			t.Fatal(err)
		}
		// Reference: a replica recovering the truncated image directly
		// (the single-node recovery path, already proven exact).
		refStore, err := store.OpenFile(clone, store.SyncOff)
		if err != nil {
			t.Fatal(err)
		}
		ref := testServer(t, Config{Store: refStore, Runners: map[Kind]Runner{}})
		if rec := ref.RecoveryReport(); rec.Sessions != 1 {
			t.Fatalf("kill point %d: reference recovered %d sessions", i, rec.Sessions)
		}
		refTS := httptest.NewServer(ref.Handler())

		// Capture the reference state now: adoption releases the
		// source's copy, so there is nothing left to compare afterwards.
		refSess, ok := ref.sessions.Get(id)
		if !ok {
			t.Fatalf("kill point %d: recovered session not live on reference", i)
		}
		refSeq := refSess.Seq()
		refSnap, err := refSess.Snapshot()
		if err != nil {
			t.Fatalf("kill point %d: reference snapshot: %v", i, err)
		}
		refRing, _ := json.Marshal(ringOf(t, ref, id))

		// Adopter: a second replica taking the session over from the
		// recovered image via the cluster handshake.
		adopter := testServer(t, Config{Store: store.NewMemory(), Runners: map[Kind]Runner{}})
		adopterTS := httptest.NewServer(adopter.Handler())
		resp, body := postWithHeader(t, adopterTS.URL+"/cluster/sessions/"+id+"/takeover",
			fmt.Sprintf(`{"source":%q}`, refTS.URL), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kill point %d: takeover %d %s", i, resp.StatusCode, body)
		}

		adoptSess, ok := adopter.sessions.Get(id)
		if !ok {
			t.Fatalf("kill point %d: adopter has no live session", i)
		}
		if adoptSess.Seq() != refSeq {
			t.Fatalf("kill point %d: adopter seq %d, reference %d", i, adoptSess.Seq(), refSeq)
		}
		adoptSnap, err := adoptSess.Snapshot()
		if err != nil {
			t.Fatalf("kill point %d: adopter snapshot: %v", i, err)
		}
		if !bytes.Equal(refSnap, adoptSnap) {
			t.Fatalf("kill point %d: adopted snapshot differs from reference recovery", i)
		}
		adoptRing, _ := json.Marshal(ringOf(t, adopter, id))
		if !bytes.Equal(refRing, adoptRing) {
			t.Fatalf("kill point %d: SSE replay ring differs:\nref: %s\nadopt: %s", i, refRing, adoptRing)
		}

		// The adopted session accepts the next edit at the right seq.
		seqBefore := adoptSess.Seq()
		resp, body = postWithHeader(t, adopterTS.URL+"/v1/sessions/"+id+"/edits",
			`{"op":"param","param":"clearance","value_mm":2.0}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kill point %d: post-takeover edit %d %s", i, resp.StatusCode, body)
		}
		if adoptSess.Seq() != seqBefore+1 {
			t.Fatalf("kill point %d: post-takeover seq %d, want %d", i, adoptSess.Seq(), seqBefore+1)
		}

		adopterTS.Close()
		refTS.Close()
		if err := refStore.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
