package serve

import (
	"container/list"
	"encoding/json"
	"time"

	"repro/internal/engine"
)

// resultStore is an LRU of recently completed results keyed by request
// content hash, each entry expiring after the configured TTL. A store hit
// answers a repeated request without queueing a job at all — the
// second-level cache above the engine's field-integral memoization.
// Guarded by the server mutex.
type resultStore struct {
	cap int
	ttl time.Duration
	ll  *list.List // front = most recently used
	m   map[engine.Key]*list.Element
}

type storeEntry struct {
	key     engine.Key
	id      string // job that produced the result; store hits re-serve it
	result  json.RawMessage
	expires time.Time
}

func newResultStore(capacity int, ttl time.Duration) *resultStore {
	return &resultStore{cap: capacity, ttl: ttl, ll: list.New(), m: make(map[engine.Key]*list.Element)}
}

// get returns the unexpired result for key and the ID of the job that
// produced it, refreshing the entry's recency, or nil on miss.
func (s *resultStore) get(key engine.Key, now time.Time) (json.RawMessage, string) {
	e, ok := s.m[key]
	if !ok {
		return nil, ""
	}
	ent := e.Value.(*storeEntry)
	if now.After(ent.expires) {
		s.ll.Remove(e)
		delete(s.m, key)
		return nil, ""
	}
	s.ll.MoveToFront(e)
	return ent.result, ent.id
}

// put stores a result, evicting the least recently used entry beyond
// capacity.
func (s *resultStore) put(key engine.Key, id string, result json.RawMessage, now time.Time) {
	s.putWithExpiry(key, id, result, now.Add(s.ttl))
}

// putWithExpiry stores a result with an explicit expiry — recovery uses
// it to reload persisted results with their original TTL deadlines
// rather than granting a fresh window.
func (s *resultStore) putWithExpiry(key engine.Key, id string, result json.RawMessage, expires time.Time) {
	if s.cap <= 0 {
		return
	}
	if e, ok := s.m[key]; ok {
		ent := e.Value.(*storeEntry)
		ent.id = id
		ent.result = result
		ent.expires = expires
		s.ll.MoveToFront(e)
		return
	}
	s.m[key] = s.ll.PushFront(&storeEntry{key: key, id: id, result: result, expires: expires})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.m, back.Value.(*storeEntry).key)
	}
}

// len returns the current entry count.
func (s *resultStore) len() int { return s.ll.Len() }
