package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/session"
	"repro/internal/workload"
)

// The session surface: long-lived interactive design sessions with
// incremental DRC, undo/redo and an SSE delta stream.
//
//	POST   /v1/sessions               create (from a design or a synthetic workload)
//	GET    /v1/sessions               list live sessions
//	GET    /v1/sessions/{id}          state (?report=1 adds the violations)
//	DELETE /v1/sessions/{id}          close
//	POST   /v1/sessions/{id}/edits    apply one edit, returns the delta
//	POST   /v1/sessions/{id}/undo     revert the latest edit
//	POST   /v1/sessions/{id}/redo     re-apply the latest undone edit
//	GET    /v1/sessions/{id}/events   SSE delta stream (Last-Event-ID replay)
//	GET    /v1/sessions/{id}/snapshot current design, ASCII layout format

// SyntheticSpec describes a workload.Synthetic design.
type SyntheticSpec struct {
	N      int     `json:"n"`
	Rules  int     `json:"rules,omitempty"`  // 0: n²/8
	Groups int     `json:"groups,omitempty"` // 0: 3
	WMM    float64 `json:"w_mm,omitempty"`   // board width; 0: 160
	HMM    float64 `json:"h_mm,omitempty"`   // board height; 0: 120
}

func (sp *SyntheticSpec) build() (*layout.Design, error) {
	if sp.N < 2 {
		return nil, fmt.Errorf("sessions: synthetic needs n >= 2")
	}
	if sp.N > 512 {
		return nil, fmt.Errorf("sessions: synthetic n %d too large (max 512)", sp.N)
	}
	rules := sp.Rules
	if rules <= 0 {
		rules = sp.N * sp.N / 8
	}
	groups := sp.Groups
	if groups <= 0 {
		groups = 3
	}
	w, h := sp.WMM, sp.HMM
	if w <= 0 {
		w = 160
	}
	if h <= 0 {
		h = 120
	}
	return workload.Synthetic(sp.N, rules, groups, w*1e-3, h*1e-3), nil
}

// SessionCreateRequest creates a session from an ASCII design or a
// synthetic workload (exactly one must be given). AutoPlace runs the
// automatic placer first, so the session starts from a legal layout.
type SessionCreateRequest struct {
	Design    string         `json:"design,omitempty"`
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
	AutoPlace bool           `json:"autoplace,omitempty"`
}

// SessionEditRequest is one edit in board units (millimeters / degrees).
type SessionEditRequest struct {
	Op      string   `json:"op"`                 // move|rotate|swap_board|add_rule|param
	Ref     string   `json:"ref,omitempty"`      // edit target; add_rule first ref
	RefB    string   `json:"ref_b,omitempty"`    // add_rule second ref
	XMM     *float64 `json:"x_mm,omitempty"`     // move
	YMM     *float64 `json:"y_mm,omitempty"`     // move
	RotDeg  *float64 `json:"rot_deg,omitempty"`  // move (optional) / rotate
	Board   *int     `json:"board,omitempty"`    // swap_board
	PEMDMM  *float64 `json:"pemd_mm,omitempty"`  // add_rule
	Param   string   `json:"param,omitempty"`    // param: clearance|edge_clearance
	ValueMM *float64 `json:"value_mm,omitempty"` // param
}

// SessionStateView is the state response, optionally with the violations.
type SessionStateView struct {
	session.State
	Violations []session.Violation `json:"violation_list,omitempty"`
}

func (s *Server) createSessionHandler(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	var req SessionCreateRequest
	if err := strictUnmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var d *layout.Design
	switch {
	case req.Design != "" && req.Synthetic != nil:
		writeError(w, http.StatusBadRequest, "sessions: give either design or synthetic, not both")
		return
	case req.Design != "":
		d, err = layout.ReadString(req.Design)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	case req.Synthetic != nil:
		d, err = req.Synthetic.build()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "sessions: design or synthetic is required")
		return
	}
	if req.AutoPlace {
		if _, err := place.AutoPlaceCtx(r.Context(), d, place.Options{}); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("sessions: autoplace: %v", err))
			return
		}
	}
	var sess *session.Session
	if cid := r.Header.Get(ClusterSessionHeader); cid != "" {
		// A cluster router minted the ID so the session hashes to a
		// stable ring owner; the prefix keeps it out of the local
		// "s%06d" namespace.
		if !strings.HasPrefix(cid, "cs-") {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("sessions: cluster session ID %q must start with cs-", cid))
			return
		}
		sess, err = s.sessions.CreateWithID(cid, d, nil)
	} else {
		sess, err = s.sessions.Create(d, nil)
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if s.cfg.Store != nil {
		// Open the durable log with the base snapshot before acknowledging
		// the session: a session whose creation was acknowledged survives a
		// restart. If the log cannot be opened the session is not created.
		snap, seq, err := sess.Checkpoint()
		if err == nil {
			err = s.cfg.Store.CreateSession(sess.ID, seq, snap)
		}
		if err != nil {
			s.sessions.Delete(sess.ID)
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("sessions: durable log: %v", err))
			return
		}
		s.attachSessionJournal(sess, 0)
	}
	w.Header().Set("X-Session-ID", sess.ID)
	writeJSON(w, http.StatusCreated, sess.State())
}

func (s *Server) listSessionsHandler(w http.ResponseWriter, _ *http.Request) {
	var out []session.State
	for _, sess := range s.sessions.List() {
		out = append(out, sess.State())
	}
	if out == nil {
		out = []session.State{}
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupSession resolves a session for a request, distinguishing "gone"
// from "draining": once Drain closed the sessions, a 404 would tell
// clients their session is dead when it is actually a restart (or a
// cluster takeover) away from living on. 503 + Retry-After invites the
// retry instead. Writes the error response itself when ok is false.
func (s *Server) lookupSession(w http.ResponseWriter, id string) (*session.Session, bool) {
	sess, ok := s.sessions.Get(id)
	if ok {
		// Flag responses served by a migration-sealed copy so the
		// cluster router (and its cold-table locate scan) treats this
		// replica as a handover source, not the live owner.
		if sess.Sealed() {
			w.Header().Set(SessionSealedHeader, "true")
		}
		return sess, true
	}
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return nil, false
	}
	writeError(w, http.StatusNotFound, "no such session")
	return nil, false
}

func (s *Server) getSessionHandler(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	view := SessionStateView{State: sess.State()}
	if boolParam(r, "report") {
		rep := sess.Report()
		for _, v := range rep.Violations {
			view.Violations = append(view.Violations, session.Violation{
				Kind: string(v.Kind), Refs: v.Refs, Detail: v.Detail, AmountMM: v.Amount * 1e3,
			})
		}
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) deleteSessionHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// A sealed copy is possibly stale — deleting it here would not close
	// the session (the live copy is elsewhere); route the delete there.
	if sess, ok := s.sessions.Get(id); ok && sess.Sealed() {
		w.Header().Set(SessionSealedHeader, "true")
		writeError(w, http.StatusConflict, "session sealed for migration")
		return
	}
	if !s.sessions.Delete(id) {
		if s.Draining() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
			return
		}
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	if s.cfg.Store != nil {
		if err := s.cfg.Store.DeleteSession(id); err != nil {
			s.cfg.Logger.Warn("session log delete", "session", id, "err", err)
		}
		s.dropDurable(id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) editSessionHandler(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	var req SessionEditRequest
	if err := strictUnmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	edit, err := req.toEdit(sess)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("X-Session-ID", sess.ID)
	t0 := time.Now()
	delta, err := sess.ApplyCtx(r.Context(), edit)
	if err != nil {
		if errors.Is(err, session.ErrSealed) {
			w.Header().Set(SessionSealedHeader, "true")
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.observeEdit(time.Since(t0), delta)
	s.maybeCompact(sess)
	writeJSON(w, http.StatusOK, delta)
}

// observeEdit feeds one applied edit (or undo/redo) into the edit counter
// and the phase histograms: the whole edit plus the incremental DRC
// recheck the session timed for us.
func (s *Server) observeEdit(dur time.Duration, delta *session.Delta) {
	s.m.sessionEdits.Add(1)
	s.phases.Observe("session.edit", dur.Seconds())
	s.phases.Observe("drc.recheck", delta.RecheckDur.Seconds())
}

// toEdit converts the millimeter/degree wire form into the SI edit.
func (req *SessionEditRequest) toEdit(sess *session.Session) (session.Edit, error) {
	e := session.Edit{Op: req.Op, Ref: req.Ref, RefB: req.RefB, Param: req.Param}
	switch req.Op {
	case session.OpMove:
		if req.XMM == nil || req.YMM == nil {
			return e, fmt.Errorf("sessions: move needs x_mm and y_mm")
		}
		e.Center = geom.V2(*req.XMM*1e-3, *req.YMM*1e-3)
		if req.RotDeg != nil {
			e.Rot = geom.Rad(*req.RotDeg)
		} else if c, ok := sess.Component(req.Ref); ok {
			e.Rot = c.Rot
		}
	case session.OpRotate:
		if req.RotDeg == nil {
			return e, fmt.Errorf("sessions: rotate needs rot_deg")
		}
		e.Rot = geom.Rad(*req.RotDeg)
	case session.OpSwapBoard:
		if req.Board == nil {
			return e, fmt.Errorf("sessions: swap_board needs board")
		}
		e.Board = *req.Board
	case session.OpAddRule:
		if req.PEMDMM == nil {
			return e, fmt.Errorf("sessions: add_rule needs pemd_mm")
		}
		e.PEMD = *req.PEMDMM * 1e-3
	case session.OpParam:
		if req.ValueMM == nil {
			return e, fmt.Errorf("sessions: param needs value_mm")
		}
		e.Value = *req.ValueMM * 1e-3
	default:
		return e, fmt.Errorf("sessions: unknown op %q", req.Op)
	}
	return e, nil
}

func (s *Server) undoSessionHandler(w http.ResponseWriter, r *http.Request) {
	s.undoRedo(w, r, true)
}

func (s *Server) redoSessionHandler(w http.ResponseWriter, r *http.Request) {
	s.undoRedo(w, r, false)
}

func (s *Server) undoRedo(w http.ResponseWriter, r *http.Request, undo bool) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	w.Header().Set("X-Session-ID", sess.ID)
	var (
		delta *session.Delta
		err   error
	)
	t0 := time.Now()
	if undo {
		delta, err = sess.UndoCtx(r.Context())
	} else {
		delta, err = sess.RedoCtx(r.Context())
	}
	if err != nil {
		if errors.Is(err, session.ErrSealed) {
			w.Header().Set(SessionSealedHeader, "true")
		}
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	s.observeEdit(time.Since(t0), delta)
	s.maybeCompact(sess)
	writeJSON(w, http.StatusOK, delta)
}

func (s *Server) snapshotSessionHandler(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	snap, err := sess.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap)
}

// sessionEventsHandler streams deltas as server-sent events. Each delta is
// one "delta" event whose id is the session sequence number; a client
// reconnecting with Last-Event-ID (or ?after=N) replays what the bounded
// ring still holds. The stream opens with a "hello" event carrying the
// current state. The channel closes — ending the stream — when the
// session is deleted, the server drains, or the client falls too far
// behind.
func (s *Server) sessionEventsHandler(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	ch, cancel := sess.Subscribe(after)
	defer cancel()
	s.m.sseClients.Add(1)
	defer s.m.sseClients.Add(-1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	st := sess.State()
	writeSSE(w, "hello", st.Seq, st)
	fl.Flush()
	for {
		select {
		case d, open := <-ch:
			if !open {
				return
			}
			writeSSE(w, "delta", d.Seq, d)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, event string, id uint64, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, data)
}

// Jobs returns views of the retained jobs, sorted by ID (submission
// order), optionally filtered by state and kind and truncated to limit.
func (s *Server) Jobs(filter State, kind Kind, limit int) []View {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	out := make([]View, 0, len(jobs))
	for _, j := range jobs {
		v := j.View()
		if filter != "" && v.State != filter {
			continue
		}
		if kind != "" && v.Kind != kind {
			continue
		}
		out = append(out, v)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// listJobsHandler serves GET /v1/jobs?state=queued&type=explore&limit=10
// — the queue visibility operators previously lacked.
func (s *Server) listJobsHandler(w http.ResponseWriter, r *http.Request) {
	filter := State(r.URL.Query().Get("state"))
	switch filter {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown state %q", filter))
		return
	}
	kind := Kind(r.URL.Query().Get("type"))
	if kind != "" {
		if _, ok := s.cfg.Runners[kind]; !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown type %q", kind))
			return
		}
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, s.Jobs(filter, kind, limit))
}
