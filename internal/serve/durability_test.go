package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// TestDrainRequeuesQueuedJobs is the regression test for the drain bug:
// jobs still sitting in the queue when the drain deadline fires used to
// be silently discarded. With a store they must stay durable as queued,
// be requeued on the next start with their original IDs, and run to
// completion — and the restart must surface them in requeued_total.
func TestDrainRequeuesQueuedJobs(t *testing.T) {
	st := store.NewMemory()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s1 := New(Config{
		Workers:    1,
		JobTimeout: time.Hour,
		Store:      st,
		Runners: map[Kind]Runner{
			"work": func(ctx context.Context, req []byte) (any, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				select {
				case <-release:
					return map[string]string{"echo": string(req)}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		},
	})

	running, err := s1.Submit("work", []byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first job never started")
	}
	queued, err := s1.Submit("work", []byte(`{"n":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if queued.State() != StateQueued {
		t.Fatalf("second job state %s, want queued on the single busy worker", queued.State())
	}

	// Drain with an already-expired deadline: both jobs are cut off.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s1.Drain(expired)
	if queued.State() != StateCancelled {
		t.Fatalf("queued job state %s after forced drain", queued.State())
	}

	// Restart on the same store. Both jobs must come back as queued —
	// neither reached a terminal state the client could have observed.
	close(release)
	s2 := testServer(t, Config{
		Workers: 1,
		Store:   st,
		Runners: map[Kind]Runner{
			"work": func(ctx context.Context, req []byte) (any, error) {
				return map[string]string{"echo": string(req)}, nil
			},
		},
	})
	rec := s2.RecoveryReport()
	if rec.Requeued != 2 {
		t.Fatalf("recovery requeued %d jobs, want 2 (1 running + 1 queued at drain)", rec.Requeued)
	}
	for _, id := range []string{running.ID, queued.ID} {
		j, err := s2.Job(id)
		if err != nil {
			t.Fatalf("job %s lost across restart: %v", id, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = j.Wait(ctx)
		cancel()
		if err != nil || j.State() != StateDone {
			t.Fatalf("requeued job %s: wait err %v, state %s", id, err, j.State())
		}
		res, errMsg := j.Result()
		if errMsg != "" || !strings.Contains(string(res), "echo") {
			t.Fatalf("requeued job %s result %q err %q", id, res, errMsg)
		}
	}

	var buf bytes.Buffer
	if err := s2.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "emiserve_requeued_total 2") {
		t.Fatalf("metrics missing requeued counter:\n%s", buf.String())
	}
}

// TestDrainRejectsRequestsCleanly is the regression test for the
// drain-vs-forward race: a request that lands AFTER drain has begun but
// BEFORE it finishes (an in-flight job is still pinning the drain) must
// get a clean 503 + Retry-After — never hang, never be half-accepted
// with an ID that won't survive.
func TestDrainRejectsRequestsCleanly(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s, base := httpFixture(t, Config{
		Workers:    1,
		JobTimeout: time.Hour,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				select {
				case <-release:
					return map[string]int{"ok": 1}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		},
	})
	if resp, body := postJSON(t, base+"/v1/predict", `{"hold":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}

	// Begin the drain; it blocks on the in-flight job.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}

	// Mid-drain: submissions and session creates shed cleanly.
	for _, c := range []struct{ url, body string }{
		{base + "/v1/predict", `{"late":1}`},
		{base + "/v1/sessions", `{"synthetic":{"n":5,"rules":3,"groups":2,"w_mm":100,"h_mm":80}}`},
	} {
		resp, body := postJSON(t, c.url, c.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s mid-drain status %d: %s, want 503", c.url, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s mid-drain response lacks Retry-After", c.url)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s mid-drain body is not a clean JSON error: %s", c.url, body)
		}
	}
	// Liveness stays up so the supervisor doesn't kill a draining
	// process; readiness reports the drain so routers stop sending work.
	if resp, _ := getJSON(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz mid-drain %d, want 200", resp.StatusCode)
	}
	if resp, _ := getJSON(t, base+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz mid-drain %d, want 503", resp.StatusCode)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
}

// TestDoneResultsSurviveRestart: a completed job's result must be
// restored from the store with its identity and original expiry — and be
// reusable through dedup without re-running the engine.
func TestDoneResultsSurviveRestart(t *testing.T) {
	st := store.NewMemory()
	var runs atomic.Int64
	runner := func(ctx context.Context, req []byte) (any, error) {
		runs.Add(1)
		return map[string]int{"answer": 42}, nil
	}
	s1 := testServer(t, Config{
		Workers: 1, ResultTTL: time.Hour, Store: st,
		Runners: map[Kind]Runner{"work": runner},
	})
	body := []byte(`{"q":"life"}`)
	j, err := s1.Submit("work", body)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := testServer(t, Config{
		Workers: 1, ResultTTL: time.Hour, Store: st,
		Runners: map[Kind]Runner{"work": runner},
	})
	if rec := s2.RecoveryReport(); rec.Restored != 1 {
		t.Fatalf("restored %d results, want 1", rec.Restored)
	}
	// The job itself is findable with its result.
	j2, err := s2.Job(j.ID)
	if err != nil {
		t.Fatalf("done job lost across restart: %v", err)
	}
	res, errMsg := j2.Result()
	if errMsg != "" || !strings.Contains(string(res), "42") {
		t.Fatalf("restored result %q err %q", res, errMsg)
	}
	// Resubmitting the same body hits the restored result store: no new
	// engine run.
	j3, err := s2.Submit("work", body)
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("engine ran %d times, want 1 (restart + dedup reuse)", n)
	}
}

// TestFailedJobsAreNotRequeued: a job that reached a terminal failure
// before the kill must stay failed after restart, not run again.
func TestFailedJobsAreNotRequeued(t *testing.T) {
	st := store.NewMemory()
	s1 := testServer(t, Config{
		Workers: 1, ResultTTL: time.Hour, Store: st,
		Runners: map[Kind]Runner{
			"work": func(ctx context.Context, req []byte) (any, error) {
				return nil, fmt.Errorf("boom")
			},
		},
	})
	j, err := s1.Submit("work", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = j.Wait(ctx)
	if j.State() != StateFailed {
		t.Fatalf("state %s, want failed", j.State())
	}

	s2 := testServer(t, Config{
		Workers: 1, Store: st,
		Runners: map[Kind]Runner{
			"work": func(ctx context.Context, req []byte) (any, error) {
				t.Error("failed job re-ran after restart")
				return nil, nil
			},
		},
	})
	if rec := s2.RecoveryReport(); rec.Requeued != 0 {
		t.Fatalf("requeued %d, want 0", rec.Requeued)
	}
	j2, err := s2.Job(j.ID)
	if err != nil {
		t.Fatalf("failed job lost: %v", err)
	}
	if j2.State() != StateFailed {
		t.Fatalf("restored state %s, want failed", j2.State())
	}
	if _, errMsg := j2.Result(); !strings.Contains(errMsg, "boom") {
		t.Fatalf("restored error %q", errMsg)
	}
}

// TestSessionsSurviveRestartOverHTTP drives the full HTTP surface: create
// a session, edit it, restart the server on the same store, and read the
// identical snapshot and sequence number back — then keep editing.
func TestSessionsSurviveRestartOverHTTP(t *testing.T) {
	st := store.NewMemory()
	s1 := testServer(t, Config{Store: st, Runners: map[Kind]Runner{}})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	// Create a session from a synthetic spec.
	var created struct {
		ID  string `json:"id"`
		Seq uint64 `json:"seq"`
	}
	postJSONInto(t, ts1.URL+"/v1/sessions", `{"synthetic":{"n":6,"rules":4,"groups":2,"w_mm":120,"h_mm":100}}`, &created)
	if created.ID == "" {
		t.Fatal("no session ID")
	}

	// A couple of edits.
	var afterEdit struct {
		Seq uint64 `json:"seq"`
	}
	postJSONInto(t, ts1.URL+"/v1/sessions/"+created.ID+"/edits",
		`{"op":"param","param":"clearance","value_mm":0.4}`, &afterEdit)
	postJSONInto(t, ts1.URL+"/v1/sessions/"+created.ID+"/edits",
		`{"op":"param","param":"clearance","value_mm":0.7}`, &afterEdit)
	snap1 := getBody(t, ts1.URL+"/v1/sessions/"+created.ID+"/snapshot")
	ts1.Close()

	s2 := testServer(t, Config{Store: st, Runners: map[Kind]Runner{}})
	if rec := s2.RecoveryReport(); rec.Sessions != 1 {
		t.Fatalf("recovered %d sessions, want 1", rec.Sessions)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	snap2 := getBody(t, ts2.URL+"/v1/sessions/"+created.ID+"/snapshot")
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("snapshot changed across restart:\nbefore:\n%s\nafter:\n%s", snap1, snap2)
	}
	// The recovered session keeps working: undo drops the last edit and
	// the next edit journals durably (visible after another restart).
	var undone struct {
		Seq uint64 `json:"seq"`
	}
	postJSONInto(t, ts2.URL+"/v1/sessions/"+created.ID+"/undo", `{}`, &undone)
	if undone.Seq != afterEdit.Seq+1 {
		t.Fatalf("undo seq %d, want %d", undone.Seq, afterEdit.Seq+1)
	}
	snap3 := getBody(t, ts2.URL+"/v1/sessions/"+created.ID+"/snapshot")

	s3 := testServer(t, Config{Store: st, Runners: map[Kind]Runner{}})
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	snap4 := getBody(t, ts3.URL+"/v1/sessions/"+created.ID+"/snapshot")
	if !bytes.Equal(snap3, snap4) {
		t.Fatal("post-restart undo was not journaled durably")
	}

	// Deleting the session must stick across restarts too.
	req, _ := http.NewRequest(http.MethodDelete, ts3.URL+"/v1/sessions/"+created.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	s4 := testServer(t, Config{Store: st, Runners: map[Kind]Runner{}})
	if rec := s4.RecoveryReport(); rec.Sessions != 0 {
		t.Fatalf("deleted session resurrected: %d sessions recovered", rec.Sessions)
	}
}

// postJSONInto posts and decodes a 2xx response into out.
func postJSONInto(t *testing.T, url, body string, out any) {
	t.Helper()
	resp, b := postJSON(t, url, body)
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", url, b, err)
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, b := getJSON(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return b
}
