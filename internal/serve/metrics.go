package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/engine"
)

// metrics holds the server's monotonic counters and live gauges. All
// fields are atomics so the hot paths never serialize on a metrics lock.
type metrics struct {
	submitted         atomic.Uint64 // jobs actually enqueued
	dedupHits         atomic.Uint64 // submissions folded into an in-flight job
	storeHits         atomic.Uint64 // submissions answered from the result store
	storeMisses       atomic.Uint64 // submissions that had to compute
	rejectedFull      atomic.Uint64 // submissions rejected: queue full
	rejectedDraining  atomic.Uint64 // submissions rejected: draining
	finishedDone      atomic.Uint64
	finishedFailed    atomic.Uint64
	finishedCancelled atomic.Uint64
	busy              atomic.Int64  // workers currently running a job
	sessionEdits      atomic.Uint64 // session edits applied (incl. undo/redo)
	sseClients        atomic.Int64  // open session event streams
	requeued          atomic.Uint64 // jobs requeued from the store at startup
	compactions       atomic.Uint64 // session WAL snapshot rewrites
	progressEvents    atomic.Uint64 // intermediate results published by runners
	jobStreams        atomic.Int64  // open job progress SSE streams
	takeovers         atomic.Uint64 // sessions adopted from a cluster peer
}

// WriteMetrics writes the Prometheus text exposition (version 0.0.4) of
// the server's state: queue depth, jobs by state (current and total),
// dedup and result-store traffic, plus the engine's shared compute
// counters (cache hits, MNA solves, field integrals).
func (s *Server) WriteMetrics(w io.Writer) error {
	// Snapshot the current per-state job population under the lock.
	byState := map[State]int{
		StateQueued: 0, StateRunning: 0,
		StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		byState[j.State()]++
	}
	storeLen := s.store.len()
	s.mu.Unlock()

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP emiserve_queue_depth Jobs waiting in the bounded queue.\n"+
		"# TYPE emiserve_queue_depth gauge\nemiserve_queue_depth %d\n",
		s.QueueDepth()); err != nil {
		return err
	}
	if err := p("# HELP emiserve_workers_busy Workers currently running a job.\n"+
		"# TYPE emiserve_workers_busy gauge\nemiserve_workers_busy %d\n",
		s.m.busy.Load()); err != nil {
		return err
	}
	if err := p("# HELP emiserve_jobs Jobs currently retained, by state.\n" +
		"# TYPE emiserve_jobs gauge\n"); err != nil {
		return err
	}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		if err := p("emiserve_jobs{state=%q} %d\n", st, byState[st]); err != nil {
			return err
		}
	}
	if err := p("# HELP emiserve_jobs_finished_total Jobs finished since start, by terminal state.\n"+
		"# TYPE emiserve_jobs_finished_total counter\n"+
		"emiserve_jobs_finished_total{state=\"done\"} %d\n"+
		"emiserve_jobs_finished_total{state=\"failed\"} %d\n"+
		"emiserve_jobs_finished_total{state=\"cancelled\"} %d\n",
		s.m.finishedDone.Load(), s.m.finishedFailed.Load(), s.m.finishedCancelled.Load()); err != nil {
		return err
	}
	if err := p("# HELP emiserve_submitted_total Jobs enqueued since start.\n"+
		"# TYPE emiserve_submitted_total counter\nemiserve_submitted_total %d\n"+
		"# HELP emiserve_dedup_hits_total Submissions folded into an identical in-flight job.\n"+
		"# TYPE emiserve_dedup_hits_total counter\nemiserve_dedup_hits_total %d\n"+
		"# HELP emiserve_result_store_hits_total Submissions answered from the completed-result store.\n"+
		"# TYPE emiserve_result_store_hits_total counter\nemiserve_result_store_hits_total %d\n"+
		"# HELP emiserve_result_store_misses_total Submissions that had to compute.\n"+
		"# TYPE emiserve_result_store_misses_total counter\nemiserve_result_store_misses_total %d\n"+
		"# HELP emiserve_result_store_entries Results currently cached.\n"+
		"# TYPE emiserve_result_store_entries gauge\nemiserve_result_store_entries %d\n"+
		"# HELP emiserve_rejected_total Submissions rejected, by reason.\n"+
		"# TYPE emiserve_rejected_total counter\n"+
		"emiserve_rejected_total{reason=\"queue_full\"} %d\n"+
		"emiserve_rejected_total{reason=\"draining\"} %d\n",
		s.m.submitted.Load(), s.m.dedupHits.Load(),
		s.m.storeHits.Load(), s.m.storeMisses.Load(), storeLen,
		s.m.rejectedFull.Load(), s.m.rejectedDraining.Load()); err != nil {
		return err
	}

	ss := s.sessions.Stats()
	if err := p("# HELP emiserve_sessions_active Live design sessions.\n"+
		"# TYPE emiserve_sessions_active gauge\nemiserve_sessions_active %d\n"+
		"# HELP emiserve_sessions_created_total Design sessions created since start.\n"+
		"# TYPE emiserve_sessions_created_total counter\nemiserve_sessions_created_total %d\n"+
		"# HELP emiserve_sessions_evicted_total Design sessions evicted by the idle TTL.\n"+
		"# TYPE emiserve_sessions_evicted_total counter\nemiserve_sessions_evicted_total %d\n"+
		"# HELP emiserve_session_edits_total Session edits applied, including undo and redo.\n"+
		"# TYPE emiserve_session_edits_total counter\nemiserve_session_edits_total %d\n"+
		"# HELP emiserve_session_event_streams Open session SSE streams.\n"+
		"# TYPE emiserve_session_event_streams gauge\nemiserve_session_event_streams %d\n",
		ss.Active, ss.Created, ss.Evicted,
		s.m.sessionEdits.Load(), s.m.sseClients.Load()); err != nil {
		return err
	}

	if err := p("# HELP emiserve_job_progress_events_total Intermediate results published by batch jobs.\n"+
		"# TYPE emiserve_job_progress_events_total counter\nemiserve_job_progress_events_total %d\n"+
		"# HELP emiserve_job_event_streams Open job progress SSE streams.\n"+
		"# TYPE emiserve_job_event_streams gauge\nemiserve_job_event_streams %d\n",
		s.m.progressEvents.Load(), s.m.jobStreams.Load()); err != nil {
		return err
	}

	if err := p("# HELP emiserve_cluster_adoptions_total Sessions adopted from a cluster peer via takeover.\n"+
		"# TYPE emiserve_cluster_adoptions_total counter\nemiserve_cluster_adoptions_total %d\n",
		s.m.takeovers.Load()); err != nil {
		return err
	}

	// Durability counters: present only when a store is configured, so an
	// ephemeral server's exposition is unchanged.
	if s.cfg.Store != nil {
		sst := s.cfg.Store.Stats()
		if err := p("# HELP emiserve_requeued_total Jobs requeued from the durable log at startup.\n"+
			"# TYPE emiserve_requeued_total counter\nemiserve_requeued_total %d\n"+
			"# HELP emiserve_session_compactions_total Session WALs rewritten as fresh snapshots.\n"+
			"# TYPE emiserve_session_compactions_total counter\nemiserve_session_compactions_total %d\n"+
			"# HELP emiserve_store_appends_total WAL records appended (edits, jobs, snapshots).\n"+
			"# TYPE emiserve_store_appends_total counter\nemiserve_store_appends_total %d\n"+
			"# HELP emiserve_store_syncs_total fsync calls issued by the store.\n"+
			"# TYPE emiserve_store_syncs_total counter\nemiserve_store_syncs_total %d\n"+
			"# HELP emiserve_store_compactions_total Log rewrites performed by the store.\n"+
			"# TYPE emiserve_store_compactions_total counter\nemiserve_store_compactions_total %d\n"+
			"# HELP emiserve_store_repairs_total Damaged WAL tails truncated during recovery.\n"+
			"# TYPE emiserve_store_repairs_total counter\nemiserve_store_repairs_total %d\n",
			s.m.requeued.Load(), s.m.compactions.Load(),
			sst.Appends, sst.Syncs, sst.Compactions, sst.Repairs); err != nil {
			return err
		}
	}

	// The per-phase latency histograms aggregated from the job traces and
	// the session edit path.
	if err := s.phases.WriteProm(w); err != nil {
		return err
	}

	// The engine's shared compute substrate (process-global).
	es := engine.Snapshot()
	return p("# HELP engine_cache_hits_total Field-integral memo cache hits.\n"+
		"# TYPE engine_cache_hits_total counter\nengine_cache_hits_total %d\n"+
		"# HELP engine_cache_misses_total Field-integral memo cache misses.\n"+
		"# TYPE engine_cache_misses_total counter\nengine_cache_misses_total %d\n"+
		"# HELP engine_mna_solves_total Frequency-domain MNA solves.\n"+
		"# TYPE engine_mna_solves_total counter\nengine_mna_solves_total %d\n"+
		"# HELP engine_neumann_integrals_total Neumann mutual-inductance integrals.\n"+
		"# TYPE engine_neumann_integrals_total counter\nengine_neumann_integrals_total %d\n"+
		"# HELP engine_pool_batches_total Parallel batches dispatched by the shared pool.\n"+
		"# TYPE engine_pool_batches_total counter\nengine_pool_batches_total %d\n"+
		"# HELP engine_pool_tasks_total Work items executed by the shared pool.\n"+
		"# TYPE engine_pool_tasks_total counter\nengine_pool_tasks_total %d\n"+
		"# HELP engine_lu_assemblies_total System-matrix assemblies (stamp-plan executions).\n"+
		"# TYPE engine_lu_assemblies_total counter\nengine_lu_assemblies_total %d\n"+
		"# HELP engine_lu_factorizations_total LU factorizations performed.\n"+
		"# TYPE engine_lu_factorizations_total counter\nengine_lu_factorizations_total %d\n"+
		"# HELP engine_lu_resolves_total Triangular resolves against a retained factorization.\n"+
		"# TYPE engine_lu_resolves_total counter\nengine_lu_resolves_total %d\n",
		es.CacheHits, es.CacheMisses, es.MNASolves, es.NeumannIntegrals,
		es.PoolBatches, es.PoolTasks,
		es.Assemblies, es.Factorizations, es.Resolves)
}
