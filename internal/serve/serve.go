// Package serve is the long-running serving layer over the EMI design
// flow: an asynchronous job queue exposing interference prediction,
// automatic placement and coupling extraction as HTTP/JSON endpoints.
//
// Architecture:
//
//   - a bounded job queue feeding a fixed pool of worker goroutines, each
//     of which runs one job at a time on top of internal/engine (whose
//     global token budget keeps total CPU use bounded however many
//     workers fan out);
//   - content-hash request deduplication: byte-identical in-flight
//     requests share one Job, and recently completed results are answered
//     from an LRU store with TTL without queueing at all;
//   - per-job deadlines and cancellation threaded through context.Context
//     down to the individual MNA solves, field integrals and raster scans,
//     so an aborted job stops consuming its worker promptly;
//   - graceful drain: intake stops, queued and running jobs finish (or are
//     cancelled when the drain deadline expires), then the workers exit.
//
// The package is transport-agnostic at its core (Submit/Cancel/Wait on
// *Server); http.go adds the HTTP/JSON surface and metrics.go the
// Prometheus text exposition.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/store"
)

// Config tunes the server. Zero values take the documented defaults.
type Config struct {
	Workers    int             // worker goroutines; <= 0: 2
	QueueDepth int             // bounded queue length; <= 0: 64
	JobTimeout time.Duration   // per-job deadline; <= 0: 2 minutes
	ResultTTL  time.Duration   // completed-result reuse window; <= 0: 10 minutes
	ResultCap  int             // LRU result store capacity; <= 0: 256
	Runners    map[Kind]Runner // nil: DefaultRunners()

	SessionTTL time.Duration // design-session idle eviction; <= 0: session.DefaultTTL
	SessionCap int           // max live design sessions; <= 0: session.DefaultCap

	// Store makes the server durable: jobs, results and sessions are
	// written ahead to it and recovered by New. nil keeps everything in
	// memory (a SIGTERM loses all state, as before). CompactEvery bounds
	// a session's WAL: after that many journal records the log is
	// rewritten as a fresh snapshot; <= 0: 256.
	Store        store.Store
	CompactEvery int

	// Logger receives the structured request and job logs; nil discards
	// them. SlowOp is the span duration past which a traced operation logs
	// its whole ancestor path through Logger; <= 0: 10 seconds.
	Logger *slog.Logger
	SlowOp time.Duration
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 10 * time.Minute
	}
	if c.ResultCap <= 0 {
		c.ResultCap = 256
	}
	if c.Runners == nil {
		c.Runners = DefaultRunners()
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	if c.SlowOp <= 0 {
		c.SlowOp = 10 * time.Second
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 256
	}
}

// Runner executes one job kind: it receives the raw request body and the
// job's context (carrying the deadline and any cancellation) and returns
// a JSON-marshalable result. Runners must honour ctx — that is what makes
// cancellation free the worker.
type Runner func(ctx context.Context, req []byte) (any, error)

// Submission errors.
var (
	ErrQueueFull = errors.New("serve: job queue is full")
	ErrDraining  = errors.New("serve: server is draining")
	ErrNotFound  = errors.New("serve: no such job")
)

// Server is the job-queue service. Create with New, stop with Drain.
type Server struct {
	cfg Config
	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[engine.Key]*Job // queued or running, by content key
	store    *resultStore
	finished []finishedRef // terminal jobs in finish order, for pruning
	queue    chan *Job
	seq      uint64
	draining bool

	sessions *session.Manager

	// Durable-session bookkeeping (Store configured): per-session WAL
	// depth driving compaction. Guarded by dmu.
	dmu      sync.Mutex
	durables map[string]*sessionDurable

	// takeoverMu serializes cluster session adoptions: two racing
	// takeovers of the same session must not double-create its durable
	// log (see cluster.go).
	takeoverMu sync.Mutex

	wg        sync.WaitGroup
	m         metrics
	recovered Recovery          // what New rebuilt from the store
	phases    *obs.HistogramSet // per-phase job latency, from the job traces
}

// sessionDurable tracks one durable session's WAL depth and serialises
// its compactions.
type sessionDurable struct {
	pending    atomic.Int64 // journal records since the last snapshot
	compacting atomic.Bool
}

type finishedRef struct {
	id string
	at time.Time
}

// New starts a server with cfg.Workers worker goroutines. When a Store
// is configured, the durable state is recovered first: unfinished jobs
// re-enter the queue, completed results repopulate the LRU store with
// their original TTLs, and sessions are replayed from their snapshots
// and edit journals — all before the workers start.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		now:      time.Now,
		jobs:     make(map[string]*Job),
		inflight: make(map[engine.Key]*Job),
		store:    newResultStore(cfg.ResultCap, cfg.ResultTTL),
		queue:    make(chan *Job, cfg.QueueDepth),
		sessions: session.NewManager(cfg.SessionTTL, cfg.SessionCap),
		durables: make(map[string]*sessionDurable),
		phases: obs.NewHistogramSet("emiserve_phase_seconds",
			"Wall time per pipeline phase, aggregated from the job traces.",
			"phase", obs.LatencySeconds),
	}
	if cfg.Store != nil {
		s.recover()
		s.sessions.SetEvictHook(func(id string) {
			if err := cfg.Store.DeleteSession(id); err != nil {
				cfg.Logger.Warn("evicted session delete", "session", id, "err", err)
			}
			s.dropDurable(id)
		})
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Recovery is the startup summary of what the store gave back.
type Recovery struct {
	Requeued  int // unfinished jobs back in the queue
	Restored  int // terminal jobs restored for status queries
	Sessions  int // sessions replayed from snapshot + journal
	LostJobs  int // unfinished jobs that could not be requeued
	BadReplay int // session logs that failed to replay (left on disk)
}

// RecoveryReport returns what New recovered from the store.
func (s *Server) RecoveryReport() Recovery { return s.recovered }

// recover rebuilds the in-memory state from the store. It runs before
// the workers start, so requeued jobs cannot race the rebuild.
func (s *Server) recover() {
	now := s.now()
	st := s.cfg.Store

	recs, err := st.LoadJobs()
	if err != nil {
		s.cfg.Logger.Warn("job recovery failed", "err", err)
	}
	var keep []store.JobRecord
	for _, r := range recs {
		var seq uint64
		if _, err := fmt.Sscanf(r.ID, "j%d", &seq); err == nil && seq > s.seq {
			s.seq = seq
		}
		kind := Kind(r.Kind)
		switch r.State {
		case store.JobQueued:
			_, known := s.cfg.Runners[kind]
			if !known || len(r.Req) == 0 {
				s.recovered.LostJobs++
				s.cfg.Logger.Warn("cannot requeue job", "job", r.ID, "kind", r.Kind)
				continue
			}
			j := newJob(r.ID, kind, hashRequest(kind, r.Req), r.Req, r.Created)
			j.trace = obs.NewTrace("job")
			j.trace.SetLogger(s.cfg.Logger.With("job", j.ID), s.cfg.SlowOp)
			j.pinned = true
			select {
			case s.queue <- j:
				s.jobs[j.ID] = j
				s.inflight[j.Key] = j
				s.m.requeued.Add(1)
				s.recovered.Requeued++
				keep = append(keep, r)
			default:
				// More unfinished jobs than queue slots: surface the loss
				// as a failed job instead of dropping it silently.
				j.state = StateFailed
				j.errMsg = "not requeued after restart: queue full"
				j.finished = now
				close(j.done)
				j.progress.close()
				s.jobs[j.ID] = j
				s.finished = append(s.finished, finishedRef{id: j.ID, at: now})
				s.recovered.LostJobs++
				r.State = store.JobFailed
				r.Error = j.errMsg
				r.Done = now
				keep = append(keep, r)
			}
		case store.JobDone, store.JobFailed, store.JobCancelled:
			// Keep terminal jobs queryable for the result-TTL window, and
			// feed unexpired results back into the LRU store.
			if !r.Expires.After(now) {
				continue
			}
			j := newJob(r.ID, kind, hashRequest(kind, r.Req), nil, r.Created)
			j.state = State(r.State)
			j.result = r.Result
			j.errMsg = r.Error
			j.finished = r.Done
			close(j.done)
			j.progress.close()
			s.jobs[j.ID] = j
			s.finished = append(s.finished, finishedRef{id: j.ID, at: r.Done})
			if r.State == store.JobDone && len(r.Req) > 0 {
				s.store.putWithExpiry(hashRequest(kind, r.Req), r.ID, r.Result, r.Expires)
			}
			s.recovered.Restored++
			keep = append(keep, r)
		}
	}
	if err == nil {
		if cerr := st.CompactJobs(keep); cerr != nil {
			s.cfg.Logger.Warn("job log compaction failed", "err", cerr)
		}
	}

	logs, err := st.LoadSessions()
	if err != nil {
		s.cfg.Logger.Warn("session recovery failed", "err", err)
		return
	}
	for _, log := range logs {
		sess, err := store.Replay(log)
		if err != nil {
			// The log survives on disk for forensics; the session does
			// not come back.
			s.recovered.BadReplay++
			s.cfg.Logger.Warn("session replay failed", "session", log.ID, "err", err)
			continue
		}
		if err := s.sessions.Adopt(sess); err != nil {
			sess.Close()
			s.recovered.BadReplay++
			s.cfg.Logger.Warn("session adopt failed", "session", log.ID, "err", err)
			continue
		}
		s.attachSessionJournal(sess, len(log.Records))
		s.recovered.Sessions++
	}
}

// attachSessionJournal installs the write-ahead hook on a durable
// session and registers its compaction bookkeeping. pending is the
// number of journal records already in the WAL since its snapshot.
func (s *Server) attachSessionJournal(sess *session.Session, pending int) {
	d := &sessionDurable{}
	d.pending.Store(int64(pending))
	s.dmu.Lock()
	s.durables[sess.ID] = d
	s.dmu.Unlock()
	st := s.cfg.Store
	id := sess.ID
	sess.SetJournal(func(rec session.JournalRecord) error {
		n, err := st.AppendEdit(id, rec)
		if err == nil {
			d.pending.Store(int64(n))
		}
		return err
	})
}

// dropDurable forgets a session's compaction bookkeeping.
func (s *Server) dropDurable(id string) {
	s.dmu.Lock()
	delete(s.durables, id)
	s.dmu.Unlock()
}

// maybeCompact rewrites a session's WAL as a fresh snapshot once enough
// journal records accumulated. Called after the edit that may have
// crossed the threshold, never under the session lock.
func (s *Server) maybeCompact(sess *session.Session) {
	if s.cfg.Store == nil {
		return
	}
	s.dmu.Lock()
	d := s.durables[sess.ID]
	s.dmu.Unlock()
	if d == nil || d.pending.Load() < int64(s.cfg.CompactEvery) {
		return
	}
	if !d.compacting.CompareAndSwap(false, true) {
		return
	}
	defer d.compacting.Store(false)
	snap, seq, err := sess.Checkpoint()
	if err == nil {
		err = s.cfg.Store.CompactSession(sess.ID, seq, snap)
	}
	if err != nil {
		s.cfg.Logger.Warn("session compaction failed", "session", sess.ID, "err", err)
		return
	}
	d.pending.Store(0)
	s.m.compactions.Add(1)
}

// Submit enqueues an asynchronous job for kind with the given request
// body and pins it: it runs to completion unless explicitly cancelled.
// A byte-identical queued or running request returns the existing job
// (request deduplication); a recently completed identical request returns
// an already-done job answered from the result store.
func (s *Server) Submit(kind Kind, body []byte) (*Job, error) {
	return s.submit(kind, body, true, obs.TraceID{})
}

// SubmitAttached is Submit for a caller that waits on the result: the job
// is not pinned, and the caller must Detach when it stops waiting. When
// the last waiter of an unpinned job detaches before completion the job
// is cancelled — the client-abort path.
func (s *Server) SubmitAttached(kind Kind, body []byte) (*Job, error) {
	return s.submit(kind, body, false, obs.TraceID{})
}

// submit enqueues one job. A non-zero tid is an inbound trace identity
// (parsed from the request's traceparent header): the job's trace
// adopts it, so the replica's spans join the router's request trace.
// Deduplicated submissions keep the first submitter's trace ID — a
// trace records what ran, and the work ran once.
func (s *Server) submit(kind Kind, body []byte, pin bool, tid obs.TraceID) (*Job, error) {
	if _, ok := s.cfg.Runners[kind]; !ok {
		return nil, fmt.Errorf("serve: unknown job kind %q", kind)
	}
	key := hashRequest(kind, body)
	now := s.now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.m.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	s.pruneLocked(now)

	// Deduplicate against the in-flight set.
	if j := s.inflight[key]; j != nil {
		s.m.dedupHits.Add(1)
		j.mu.Lock()
		j.deduped++
		if pin {
			j.pinned = true
		} else {
			j.waiters++
		}
		j.mu.Unlock()
		return j, nil
	}

	// Answer from the result store when a byte-identical request
	// completed within the TTL. The hit re-serves the ORIGINAL job ID:
	// minting a fresh alias ID here would acknowledge an ID with no
	// write-ahead record behind it — the original's terminal record is
	// already durable, an alias would evaporate on restart.
	if res, origID := s.store.get(key, now); res != nil {
		s.m.storeHits.Add(1)
		if j := s.jobs[origID]; j != nil {
			return j, nil
		}
		// Original pruned from the job map: resurrect it under its own
		// ID, backed by the stored result.
		j := newJob(origID, kind, key, nil, now)
		j.state = StateDone
		j.result = res
		j.finished = now
		close(j.done)
		j.progress.close()
		s.jobs[j.ID] = j
		s.finished = append(s.finished, finishedRef{id: j.ID, at: now})
		s.m.finishedDone.Add(1)
		return j, nil
	}
	s.m.storeMisses.Add(1)

	j := newJob(s.nextIDLocked(key), kind, key, body, now)
	// The trace starts at submission so its age at run start is the queue
	// wait. The root is named "job", not the job ID — span names feed the
	// phase histogram labels, which must stay low-cardinality.
	j.trace = obs.NewTrace("job")
	j.trace.SetID(tid)
	j.trace.SetLogger(s.cfg.Logger.With("job", j.ID), s.cfg.SlowOp)
	if pin {
		j.pinned = true
	} else {
		j.waiters = 1
	}
	select {
	case s.queue <- j:
	default:
		s.m.rejectedFull.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.inflight[key] = j
	s.m.submitted.Add(1)
	// Write-ahead before the caller sees the job ID: an acknowledged
	// submission survives a restart (it is requeued, not lost).
	if s.cfg.Store != nil {
		if err := s.cfg.Store.AppendJob(store.JobRecord{
			ID: j.ID, Kind: string(kind), State: store.JobQueued,
			Req: body, Created: now,
		}); err != nil {
			s.cfg.Logger.Warn("job journal append", "job", j.ID, "err", err)
		}
	}
	return j, nil
}

// persistJobFinal appends a job's terminal record, fixing its durable
// state so recovery does not rerun it. Jobs flagged for requeue (drain
// cancelled them, the work is still owed) skip the record on purpose:
// their last durable state stays "queued".
func (s *Server) persistJobFinal(j *Job, final State) {
	if s.cfg.Store == nil {
		return
	}
	j.mu.Lock()
	requeue := j.requeue
	rec := store.JobRecord{
		ID: j.ID, Kind: string(j.Kind), State: string(final),
		Result: j.result, Error: j.errMsg,
		Created: j.Created, Done: j.finished,
		Expires: j.finished.Add(s.cfg.ResultTTL),
	}
	j.mu.Unlock()
	if requeue {
		return
	}
	if err := s.cfg.Store.AppendJob(rec); err != nil {
		s.cfg.Logger.Warn("job journal append", "job", j.ID, "err", err)
	}
}

// nextIDLocked mints a job ID: a sequence number plus the content-hash
// prefix, so identical requests are visibly related in logs.
func (s *Server) nextIDLocked(key engine.Key) string {
	s.seq++
	return fmt.Sprintf("j%06d-%08x", s.seq, uint32(key[0]))
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel aborts a job: a queued job never starts, a running job's context
// is cancelled (its runner returns early and the worker is freed).
// Returns false when the job is already terminal.
func (s *Server) Cancel(id string) (bool, error) {
	j, err := s.Job(id)
	if err != nil {
		return false, err
	}
	return s.cancelJob(j, "cancelled", false), nil
}

// Detach releases one waiting submission obtained via SubmitAttached.
// When the last waiter of an unpinned, still-pending job detaches, the
// job is cancelled.
func (s *Server) Detach(j *Job) {
	j.mu.Lock()
	if j.waiters > 0 {
		j.waiters--
	}
	abandon := j.waiters == 0 && !j.pinned && !j.state.terminal()
	j.mu.Unlock()
	if abandon {
		s.cancelJob(j, "cancelled: all clients disconnected", false)
	}
}

// cancelJob moves a job to StateCancelled (queued) or requests
// cancellation (running). Reports whether it acted. requeue marks the
// cancellation as administrative (drain deadline): the job's durable
// state stays "queued" and a restarted server runs it again.
func (s *Server) cancelJob(j *Job, reason string, requeue bool) bool {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.canceled = true
		j.requeue = requeue
		j.errMsg = reason
		j.finished = s.now()
		close(j.done)
		j.progress.close()
		j.mu.Unlock()
		s.finishJob(j, StateCancelled)
		s.persistJobFinal(j, StateCancelled)
		return true
	case StateRunning:
		j.canceled = true
		j.requeue = requeue
		j.errMsg = reason
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel() // the worker finishes the bookkeeping
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// worker drains the queue until it is closed by Drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one dequeued job under its deadline.
func (s *Server) run(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	j.state = StateRunning
	j.cancel = cancel
	j.started = s.now()
	runner := s.cfg.Runners[j.Kind]
	req := j.req
	tr := j.trace
	j.mu.Unlock()

	if tr != nil {
		// The trace is as old as the submission: its age is the queue wait.
		tr.RecordSpan("queue.wait", 0, tr.Age())
		ctx = obs.WithTrace(ctx, tr)
	}
	// Intermediate results the runner publishes stream to the job's event
	// subscribers (see progress.go).
	ctx = withPublisher(ctx, func(stage string, v any) {
		if j.progress.publish(stage, v, s.now()) {
			s.m.progressEvents.Add(1)
		}
	})
	s.m.busy.Add(1)
	t0 := time.Now()
	kctx, ksp := obs.Start(ctx, string(j.Kind))
	res, err := runner(kctx, req)
	ksp.End()
	dur := time.Since(t0)
	s.m.busy.Add(-1)
	cancel()

	var timings []obs.PhaseTiming
	if tr != nil {
		tr.Finish()
		timings = tr.Timings()
		for _, t := range timings {
			s.phases.Observe(t.Phase, t.TotalSeconds())
		}
	}
	s.cfg.Logger.Info("job finished",
		"job", j.ID, "kind", j.Kind, "dur_ms", dur.Milliseconds(),
		"err", err != nil)

	j.mu.Lock()
	j.timings = timings
	j.cancel = nil
	j.finished = s.now()
	var final State
	switch {
	case j.canceled:
		final = StateCancelled
		if j.errMsg == "" {
			j.errMsg = "cancelled"
		}
	case errors.Is(err, context.DeadlineExceeded):
		final = StateFailed
		j.errMsg = fmt.Sprintf("deadline exceeded after %v", s.cfg.JobTimeout)
	case err != nil:
		final = StateFailed
		j.errMsg = err.Error()
	default:
		raw, merr := json.Marshal(res)
		if merr != nil {
			final = StateFailed
			j.errMsg = fmt.Sprintf("result marshal: %v", merr)
		} else {
			final = StateDone
			j.result = raw
		}
	}
	j.state = final
	result := j.result
	close(j.done)
	j.progress.close()
	j.mu.Unlock()

	s.finishJob(j, final)
	s.persistJobFinal(j, final)
	if final == StateDone {
		s.mu.Lock()
		s.store.put(j.Key, j.ID, result, s.now())
		s.mu.Unlock()
	}
}

// finishJob records a terminal transition: the job leaves the in-flight
// dedup set and joins the pruning list.
func (s *Server) finishJob(j *Job, final State) {
	switch final {
	case StateDone:
		s.m.finishedDone.Add(1)
	case StateFailed:
		s.m.finishedFailed.Add(1)
	case StateCancelled:
		s.m.finishedCancelled.Add(1)
	}
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	s.finished = append(s.finished, finishedRef{id: j.ID, at: s.now()})
	s.mu.Unlock()
}

// pruneLocked drops finished jobs beyond the retention window (ResultTTL)
// or count (ResultCap), so the job map stays bounded under sustained
// traffic. Callers hold s.mu.
func (s *Server) pruneLocked(now time.Time) {
	cutoff := now.Add(-s.cfg.ResultTTL)
	for len(s.finished) > 0 &&
		(s.finished[0].at.Before(cutoff) || len(s.finished) > s.cfg.ResultCap) {
		delete(s.jobs, s.finished[0].id)
		s.finished = s.finished[1:]
	}
}

// QueueDepth returns the number of jobs waiting in the queue.
func (s *Server) QueueDepth() int { return len(s.queue) }

// QueueCap returns the bounded queue's capacity — with QueueDepth, the
// saturation signal the cluster router's admission control keys on.
func (s *Server) QueueCap() int { return s.cfg.QueueDepth }

// Draining reports whether intake has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake and waits for queued and running jobs to finish.
// When ctx expires first, every remaining job is cancelled and the
// workers are awaited before returning ctx's error. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	// Close the design sessions so any open SSE streams terminate.
	s.sessions.CloseAll()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: abort whatever is still alive.
	s.mu.Lock()
	var pending []*Job
	for _, j := range s.jobs {
		if !j.State().terminal() {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()
	for _, j := range pending {
		// Requeue: the work was accepted and is still owed. The durable
		// state stays "queued" and a restarted server picks it up — drain
		// no longer silently discards the backlog.
		s.cancelJob(j, "cancelled: drain deadline exceeded", true)
	}
	<-done
	return ctx.Err()
}
