package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// httpFixture starts an httptest server over a Server with injected
// runners and returns both plus a base URL.
func httpFixture(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := testServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestHTTPWaitRoundTrip exercises the synchronous path: submit with
// ?wait=1, get 200 with the result inline.
func TestHTTPWaitRoundTrip(t *testing.T) {
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) {
				return map[string]int{"answer": 42}, nil
			},
		},
	})
	resp, body := postJSON(t, base+"/v1/predict?wait=1", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !strings.Contains(string(v.Result), "42") {
		t.Fatalf("view = %+v", v)
	}
}

// TestHTTPAsyncPoll exercises the asynchronous path: 202 on submit, then
// GET /v1/jobs/{id}?wait=1 until done.
func TestHTTPAsyncPoll(t *testing.T) {
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindCouple: func(ctx context.Context, req []byte) (any, error) {
				return "curve", nil
			},
		},
	})
	resp, body := postJSON(t, base+"/v1/couple", `{"a":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.State == "" {
		t.Fatalf("view = %+v", v)
	}
	resp, body = getJSON(t, base+"/v1/jobs/"+v.ID+"?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !strings.Contains(string(v.Result), "curve") {
		t.Fatalf("polled view = %+v", v)
	}
	// Unknown job IDs are 404.
	resp, _ = getJSON(t, base+"/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}
}

// TestHTTPCancel exercises DELETE /v1/jobs/{id} on a running job and the
// 409 on an already-terminal one.
func TestHTTPCancel(t *testing.T) {
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPlace: func(ctx context.Context, req []byte) (any, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			},
		},
	})
	_, body := postJSON(t, base+"/v1/place", `{"d":1}`)
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d body %s", resp.StatusCode, b)
	}
	// Wait for the terminal state, then a second cancel conflicts.
	resp, b = getJSON(t, base+"/v1/jobs/"+v.ID+"?wait=1")
	if resp.StatusCode != 499 {
		t.Fatalf("cancelled job status %d body %s", resp.StatusCode, b)
	}
	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel status %d", resp.StatusCode)
	}
}

// TestHTTPClientAbort verifies the client-abort path end to end: a
// waiting request whose connection drops cancels the job it was the only
// waiter of.
func TestHTTPClientAbort(t *testing.T) {
	running := make(chan string, 1)
	s, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			},
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/predict?wait=1", strings.NewReader(`{"n":1}`))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Wait until the job is running, then drop the client.
	deadline := time.After(5 * time.Second)
	for {
		var found *Job
		s.mu.Lock()
		for _, j := range s.jobs {
			found = j
		}
		s.mu.Unlock()
		if found != nil && found.State() == StateRunning {
			running <- found.ID
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never started")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("aborted request returned no error")
	}
	id := <-running
	j, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := j.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCancelled {
		t.Fatalf("abandoned job state %s, want cancelled", j.State())
	}
}

// TestHTTPHealthAndMetrics checks /healthz in both lifecycles and the
// required metric families on /metrics.
func TestHTTPHealthAndMetrics(t *testing.T) {
	s, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) { return "ok", nil },
		},
	})
	resp, body := getJSON(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz %d %s", resp.StatusCode, body)
	}

	// One solved and one deduplicated-from-store request populate counters.
	postJSON(t, base+"/v1/predict?wait=1", `{"m":1}`)
	postJSON(t, base+"/v1/predict?wait=1", `{"m":1}`)

	resp, body = getJSON(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"emiserve_queue_depth",
		"emiserve_workers_busy",
		`emiserve_jobs{state="queued"}`,
		`emiserve_jobs_finished_total{state="done"}`,
		"emiserve_submitted_total",
		"emiserve_dedup_hits_total",
		"emiserve_result_store_hits_total",
		"emiserve_cluster_adoptions_total",
		"engine_cache_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "emiserve_result_store_hits_total 1") {
		t.Errorf("store hit not counted:\n%s", text)
	}

	ctx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Liveness stays 200 while draining (the process is alive and must
	// not be killed by a liveness-keyed supervisor mid-drain); readiness
	// flips to 503 so routers stop sending work.
	resp, body = getJSON(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining healthz %d %s", resp.StatusCode, body)
	}
	resp, body = getJSON(t, base+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining readyz %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz has no Retry-After")
	}
	resp, _ = postJSON(t, base+"/v1/predict", `{"m":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("submit while draining: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestHTTPBadRequestBody verifies a malformed body fails the job with a
// 500 on the synchronous path (validation runs in the runner).
func TestHTTPBadRequestBody(t *testing.T) {
	_, base := httpFixture(t, Config{Workers: 1}) // real DefaultRunners
	resp, body := postJSON(t, base+"/v1/predict?wait=1", `{"no_such_field":true}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateFailed || !strings.Contains(v.Error, "unknown field") {
		t.Fatalf("view = %+v", v)
	}
}

// TestHTTPEndToEnd drives all three endpoints against the real runners:
// the buck-converter netlist from testdata for predict, a small design
// for place, and a short sweep for couple.
func TestHTTPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real solves in -short mode")
	}
	netlistText, err := os.ReadFile("../../testdata/buck.cir")
	if err != nil {
		t.Fatal(err)
	}
	_, base := httpFixture(t, Config{Workers: 2})

	// Predict: cap the frequency range to keep the harmonic count small.
	preq, _ := json.Marshal(PredictRequest{
		Netlist: string(netlistText),
		Sources: []string{"IQ1", "VD1"},
		Measure: "lisn_meas",
		MaxFreq: 2e6,
	})
	resp, body := postJSON(t, base+"/v1/predict?wait=1", string(preq))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	var pres PredictResponse
	if err := json.Unmarshal(v.Result, &pres); err != nil {
		t.Fatal(err)
	}
	if len(pres.FreqsHz) == 0 || len(pres.FreqsHz) != len(pres.LevelsDBuV) {
		t.Fatalf("predict response %d freqs, %d levels", len(pres.FreqsHz), len(pres.LevelsDBuV))
	}

	// Place: a two-component design on a small board.
	design := `DESIGN http-e2e
BOARDS 1
CLEARANCE 1.0
AREA board 0 0 0 40 0 40 40 0 40
COMP A 5.0 5.0 5.0 GROUP g
COMP B 5.0 5.0 5.0 GROUP g
NET n 0.0 A B
END
`
	lreq, _ := json.Marshal(PlaceRequest{Design: design})
	resp, body = postJSON(t, base+"/v1/place?wait=1", string(lreq))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	var lres PlaceResponse
	if err := json.Unmarshal(v.Result, &lres); err != nil {
		t.Fatal(err)
	}
	if lres.Placed != 2 || !strings.Contains(lres.Design, " AT ") {
		t.Fatalf("place response placed=%d green=%v design:\n%s", lres.Placed, lres.Green, lres.Design)
	}

	// Couple: three points of the X2-capacitor pair curve.
	creq, _ := json.Marshal(CoupleRequest{A: "x2cap:1.5u", B: "x2cap:1.5u", FromMM: 20, ToMM: 28, StepMM: 4})
	resp, body = postJSON(t, base+"/v1/couple?wait=1", string(creq))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("couple status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	var cres CoupleResponse
	if err := json.Unmarshal(v.Result, &cres); err != nil {
		t.Fatal(err)
	}
	if len(cres.DistancesMM) != 3 || len(cres.K) != 3 {
		t.Fatalf("couple response %d distances, %d ks", len(cres.DistancesMM), len(cres.K))
	}
	for i, k := range cres.K {
		if k <= 0 || k >= 1 {
			t.Fatalf("k[%d] = %g out of (0,1)", i, k)
		}
	}
	// Coupling decays with distance.
	if !(cres.K[0] > cres.K[1] && cres.K[1] > cres.K[2]) {
		t.Fatalf("coupling does not decay: %v", cres.K)
	}
}

// TestHTTPBodyTooLarge verifies the request size guard.
func TestHTTPBodyTooLarge(t *testing.T) {
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) { return nil, nil },
		},
	})
	big := strings.Repeat("x", maxBodyBytes+1)
	resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(big))
	if err != nil {
		t.Skipf("oversize post failed at transport level: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}
