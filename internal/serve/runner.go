package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/components"
	"repro/internal/drc"
	"repro/internal/emi"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/linalg"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/peec"
	"repro/internal/place"
	"repro/internal/rules"
)

// DefaultRunners wires the endpoints to the real compute core. The
// runners are pure request → response functions; all shared state (worker
// pool tokens, field-integral cache, counters) lives in internal/engine.
// The batch runners (explore, yield, in explore.go) additionally stream
// intermediate results through Publish.
func DefaultRunners() map[Kind]Runner {
	return map[Kind]Runner{
		KindPredict: runPredict,
		KindPlace:   runPlace,
		KindCouple:  runCouple,
		KindExplore: runExplore,
		KindYield:   runYield,
	}
}

// ComputeOpts are the numerics knobs every job request accepts — the
// HTTP mirror of the CLIs' -solver and -theta flags, but scoped to one
// job instead of the whole process. A knob a kind's pipeline does not
// exercise is validated and then ignored, like an unused tolerance:
// predict runs MNA but extracts no couplings (theta ignored), couple
// extracts couplings but solves nothing (solver ignored), place does
// neither, explore and yield do both.
type ComputeOpts struct {
	// Solver picks the MNA factorization backend for this job: "auto"
	// (default; size heuristic), "dense" or "sparse".
	Solver string `json:"solver,omitempty"`
	// Theta sets the hierarchical coupling-extraction accuracy,
	// θ ∈ (0, 1); smaller is more accurate, 0 (default) is exact.
	Theta float64 `json:"theta,omitempty"`
}

// resolve validates both knobs and returns the parsed solver mode.
func (o ComputeOpts) resolve() (linalg.SolverMode, error) {
	mode, err := linalg.ParseSolverMode(o.Solver)
	if err != nil {
		return linalg.ModeAuto, err
	}
	if o.Theta < 0 || o.Theta >= 1 {
		return linalg.ModeAuto, fmt.Errorf("linalg: theta %g out of range [0, 1)", o.Theta)
	}
	return mode, nil
}

// PredictRequest asks for the conducted-emission spectrum of a netlist —
// the paper's interference prediction as a service.
type PredictRequest struct {
	Netlist     string   `json:"netlist"`                // SPICE-style netlist text
	Sources     []string `json:"sources"`                // switching V/I PULSE elements
	Measure     string   `json:"measure"`                // measurement node (LISN receiver)
	MaxFreq     float64  `json:"max_freq,omitempty"`     // Hz; 0 = CISPR band stop
	Harmonics   int      `json:"harmonics,omitempty"`    // 0 = enough to reach MaxFreq
	NoCouplings bool     `json:"no_couplings,omitempty"` // strip K elements first
	ComputeOpts
}

// ViolationView is one CISPR limit violation in a response.
type ViolationView struct {
	FreqHz  float64 `json:"freq_hz"`
	LevelDB float64 `json:"level_dbuv"`
	LimitDB float64 `json:"limit_dbuv"`
}

// PredictResponse carries the spectrum and its CISPR verdict.
type PredictResponse struct {
	FreqsHz       []float64       `json:"freqs_hz"`
	LevelsDBuV    []float64       `json:"levels_dbuv"`
	WorstMarginDB *float64        `json:"worst_margin_db,omitempty"` // omitted when no band overlaps
	Violations    []ViolationView `json:"violations,omitempty"`
}

func runPredict(ctx context.Context, req []byte) (any, error) {
	_, psp := obs.Start(ctx, "parse")
	var r PredictRequest
	if err := strictUnmarshal(req, &r); err != nil {
		psp.End()
		return nil, err
	}
	if r.Netlist == "" || r.Measure == "" || len(r.Sources) == 0 {
		psp.End()
		return nil, fmt.Errorf("predict: netlist, sources and measure are required")
	}
	mode, err := r.resolve()
	if err != nil {
		psp.End()
		return nil, fmt.Errorf("predict: %w", err)
	}
	ckt, err := netlist.Parse(strings.NewReader(r.Netlist))
	if err != nil {
		psp.End()
		return nil, err
	}
	psp.Int("elements", int64(len(ckt.Elements)))
	psp.End()
	if r.NoCouplings {
		ckt.RemoveCouplings()
	}
	p := &emi.Predictor{
		Circuit:     ckt,
		Sources:     r.Sources,
		MeasureNode: r.Measure,
		MaxFreq:     r.MaxFreq,
		Harmonics:   r.Harmonics,
		Solver:      mode,
	}
	s, err := p.SpectrumCtx(ctx)
	if err != nil {
		return nil, err
	}
	resp := &PredictResponse{FreqsHz: s.Freqs, LevelsDBuV: s.DB}
	if m := s.WorstMargin(); !math.IsInf(m, 0) && !math.IsNaN(m) {
		resp.WorstMarginDB = &m
	}
	for _, v := range s.Violations() {
		resp.Violations = append(resp.Violations, ViolationView{
			FreqHz: v.Freq, LevelDB: v.Level, LimitDB: v.LimitDB,
		})
	}
	return resp, nil
}

// PlaceRequest asks for an automatic placement of a design in the ASCII
// file interface.
type PlaceRequest struct {
	Design       string  `json:"design"`                  // ASCII design file text
	Baseline     bool    `json:"baseline,omitempty"`      // ignore EMD rules
	SkipRotation bool    `json:"skip_rotation,omitempty"` // skip step 1
	Partition    bool    `json:"partition,omitempty"`     // two-board partitioning
	GridMM       float64 `json:"grid_mm,omitempty"`       // candidate raster; 0 = auto
	ComputeOpts
}

// PlaceResponse carries the placed design and its DRC verdict.
type PlaceResponse struct {
	Design         string          `json:"design"` // placed, same ASCII interface
	Placed         int             `json:"placed"`
	RotationPasses int             `json:"rotation_passes,omitempty"`
	Green          bool            `json:"green"`
	Checks         int             `json:"checks"`
	Violations     []drc.Violation `json:"violations,omitempty"`
}

func runPlace(ctx context.Context, req []byte) (any, error) {
	_, psp := obs.Start(ctx, "parse")
	var r PlaceRequest
	if err := strictUnmarshal(req, &r); err != nil {
		psp.End()
		return nil, err
	}
	if r.Design == "" {
		psp.End()
		return nil, fmt.Errorf("place: design is required")
	}
	if _, err := r.resolve(); err != nil {
		psp.End()
		return nil, fmt.Errorf("place: %w", err)
	}
	d, err := layout.ReadString(r.Design)
	if err != nil {
		psp.End()
		return nil, err
	}
	psp.Int("comps", int64(len(d.Comps)))
	psp.End()
	res, err := place.AutoPlaceCtx(ctx, d, place.Options{
		IgnoreEMD:    r.Baseline,
		SkipRotation: r.SkipRotation,
		Partition:    r.Partition,
		GridStep:     r.GridMM * 1e-3,
	})
	if err != nil {
		return nil, err
	}
	rep := drc.CheckCtx(ctx, d)
	var buf bytes.Buffer
	if err := layout.Write(&buf, d); err != nil {
		return nil, err
	}
	return &PlaceResponse{
		Design:         buf.String(),
		Placed:         res.Placed,
		RotationPasses: res.RotationPasses,
		Green:          rep.Green(),
		Checks:         rep.Checks,
		Violations:     rep.Violations,
	}, nil
}

// CoupleRequest asks for the PEEC coupling factor of two catalog
// components over a distance sweep (see components.ParseSpec for the
// spec vocabulary), optionally deriving the PEMD rule for a k_max.
type CoupleRequest struct {
	A      string  `json:"a"`                 // component spec, e.g. "x2cap:1.5u"
	B      string  `json:"b"`                 // component spec
	FromMM float64 `json:"from_mm,omitempty"` // sweep start; 0 = 16
	ToMM   float64 `json:"to_mm,omitempty"`   // sweep end; 0 = 60
	StepMM float64 `json:"step_mm,omitempty"` // sweep step; 0 = 4
	KMax   float64 `json:"k_max,omitempty"`   // also derive PEMD when > 0
	ComputeOpts
}

// CoupleResponse carries the coupling-vs-distance curve.
type CoupleResponse struct {
	DistancesMM []float64 `json:"distances_mm"`
	K           []float64 `json:"coupling_factors"`
	PEMDMM      float64   `json:"pemd_mm,omitempty"`
}

func runCouple(ctx context.Context, req []byte) (any, error) {
	var r CoupleRequest
	if err := strictUnmarshal(req, &r); err != nil {
		return nil, err
	}
	if _, err := r.resolve(); err != nil {
		return nil, fmt.Errorf("couple: %w", err)
	}
	a, err := components.ParseSpec(r.A)
	if err != nil {
		return nil, fmt.Errorf("couple: a: %w", err)
	}
	b, err := components.ParseSpec(r.B)
	if err != nil {
		return nil, fmt.Errorf("couple: b: %w", err)
	}
	from, to, step := r.FromMM, r.ToMM, r.StepMM
	if from <= 0 {
		from = 16
	}
	if to <= 0 {
		to = 60
	}
	if step <= 0 {
		step = 4
	}
	if to < from {
		return nil, fmt.Errorf("couple: to_mm %g < from_mm %g", to, from)
	}
	var dists []float64
	for mm := from; mm <= to+1e-9; mm += step {
		dists = append(dists, mm)
	}
	const maxSweepPoints = 4096
	if len(dists) > maxSweepPoints {
		return nil, fmt.Errorf("couple: sweep has %d points, max %d", len(dists), maxSweepPoints)
	}
	// The distances are independent field computations: fan them out over
	// the shared engine pool under the job's context.
	ia := &components.Instance{Ref: "A", Model: a}
	ks, err := engine.MapCtx(ctx, len(dists), func(i int) (float64, error) {
		ib := &components.Instance{Ref: "B", Model: b, Center: geom.V2(0, dists[i]*1e-3)}
		if r.Theta > 0 {
			return math.Abs(components.CouplingFactorHier(ia, ib, peec.DefaultOrder, r.Theta)), nil
		}
		return math.Abs(components.CouplingFactor(ia, ib, peec.DefaultOrder)), nil
	})
	if err != nil {
		return nil, err
	}
	resp := &CoupleResponse{DistancesMM: dists, K: ks}
	if r.KMax > 0 {
		pemd, err := rules.DerivePEMD(a, b, rules.DeriveOptions{KMax: r.KMax})
		if err != nil {
			return nil, err
		}
		resp.PEMDMM = pemd * 1e3
	}
	return resp, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so typos in
// request bodies fail loudly instead of silently running defaults.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}
