package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/session"
)

// createTestSession posts a small synthetic session and returns its state.
func createTestSession(t *testing.T, base string) session.State {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/sessions",
		`{"synthetic":{"n":6,"rules":8,"groups":2},"autoplace":true}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var st session.State
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("no session id in %s", body)
	}
	return st
}

// TestSessionHTTPLifecycle drives the whole surface: create, edit, undo,
// redo, state with report, snapshot, list, delete.
func TestSessionHTTPLifecycle(t *testing.T) {
	_, base := httpFixture(t, Config{Workers: 1})
	st := createTestSession(t, base)
	if !st.Green {
		t.Fatalf("autoplaced session should start green: %+v", st)
	}

	// An edit returns a delta with the incremental accounting.
	resp, body := postJSON(t, base+"/v1/sessions/"+st.ID+"/edits",
		`{"op":"move","ref":"U01","x_mm":40,"y_mm":40}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: %d %s", resp.StatusCode, body)
	}
	var delta session.Delta
	if err := json.Unmarshal(body, &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Seq != 1 || delta.Op != "move" || delta.Ref != "U01" {
		t.Fatalf("delta = %+v", delta)
	}
	if delta.ChecksEvaluated <= 0 || delta.ChecksEvaluated >= delta.ChecksFull {
		t.Fatalf("incremental accounting looks wrong: evaluated %d of %d",
			delta.ChecksEvaluated, delta.ChecksFull)
	}

	// Bad edits are 400 without changing the sequence.
	resp, body = postJSON(t, base+"/v1/sessions/"+st.ID+"/edits", `{"op":"move","ref":"NOPE","x_mm":1,"y_mm":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad edit: %d %s", resp.StatusCode, body)
	}

	// Undo then redo.
	resp, body = postJSON(t, base+"/v1/sessions/"+st.ID+"/undo", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undo: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, base+"/v1/sessions/"+st.ID+"/redo", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("redo: %d %s", resp.StatusCode, body)
	}
	// Redo with empty stack conflicts.
	resp, _ = postJSON(t, base+"/v1/sessions/"+st.ID+"/redo", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("empty redo: %d", resp.StatusCode)
	}

	// State with the report attached.
	resp, body = getJSON(t, base+"/v1/sessions/"+st.ID+"?report=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d %s", resp.StatusCode, body)
	}
	var view SessionStateView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Seq != 3 {
		t.Fatalf("seq = %d, want 3 (edit+undo+redo)", view.Seq)
	}

	// Snapshot parses back as a design (exercised via a second session).
	resp, snap := getJSON(t, base+"/v1/sessions/"+st.ID+"/snapshot")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(snap), "DESIGN") {
		t.Fatalf("snapshot: %d %q", resp.StatusCode, snap)
	}
	restoreBody, _ := json.Marshal(map[string]string{"design": string(snap)})
	resp, body = postJSON(t, base+"/v1/sessions", string(restoreBody))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d %s", resp.StatusCode, body)
	}

	// List sees both sessions.
	resp, body = getJSON(t, base+"/v1/sessions")
	var list []session.State
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list = %d sessions, want 2: %s", len(list), body)
	}

	// Delete, then 404.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	resp, _ = getJSON(t, base+"/v1/sessions/"+st.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d", resp.StatusCode)
	}
}

// TestSessionCreateValidation covers the request validation paths.
func TestSessionCreateValidation(t *testing.T) {
	_, base := httpFixture(t, Config{Workers: 1})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"design":"nonsense"}`, http.StatusBadRequest},
		{`{"synthetic":{"n":1}}`, http.StatusBadRequest},
		{`{"design":"x","synthetic":{"n":5}}`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, base+"/v1/sessions", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("create %s: %d (want %d) %s", tc.body, resp.StatusCode, tc.want, body)
		}
	}
}

// TestSessionSSE opens the event stream, applies an edit and expects the
// hello event followed by the delta, with the id line carrying the seq.
func TestSessionSSE(t *testing.T) {
	_, base := httpFixture(t, Config{Workers: 1})
	st := createTestSession(t, base)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sessions/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	readEvent := func() (event, id, data string) {
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				return
			case strings.HasPrefix(line, "event: "):
				event = line[len("event: "):]
			case strings.HasPrefix(line, "id: "):
				id = line[len("id: "):]
			case strings.HasPrefix(line, "data: "):
				data = line[len("data: "):]
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return
	}

	ev, _, data := readEvent()
	if ev != "hello" || !strings.Contains(data, st.ID) {
		t.Fatalf("first event = %q %q", ev, data)
	}

	go func() {
		// Give the stream a moment, then edit.
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Post(base+"/v1/sessions/"+st.ID+"/edits", "application/json",
			strings.NewReader(`{"op":"move","ref":"U02","x_mm":30,"y_mm":30}`))
		if err == nil {
			resp.Body.Close()
		}
	}()

	ev, id, data := readEvent()
	if ev != "delta" || id != "1" {
		t.Fatalf("second event = %q id=%q %q", ev, id, data)
	}
	var delta session.Delta
	if err := json.Unmarshal([]byte(data), &delta); err != nil {
		t.Fatalf("delta payload: %v in %q", err, data)
	}
	if delta.Ref != "U02" {
		t.Fatalf("delta = %+v", delta)
	}

	// Replay: a second client connecting with Last-Event-ID 0 sees the
	// delta from the ring right after its hello.
	req2, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sessions/"+st.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", "0")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc = bufio.NewScanner(resp2.Body)
	ev, _, _ = readEvent()
	if ev != "hello" {
		t.Fatalf("replay first event = %q", ev)
	}
	ev, id, _ = readEvent()
	if ev != "delta" || id != "1" {
		t.Fatalf("replay second event = %q id=%q", ev, id)
	}
}

// TestListJobs covers the new GET /v1/jobs listing with filter and limit.
func TestListJobs(t *testing.T) {
	block := make(chan struct{})
	s, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) {
				select {
				case <-block:
					return map[string]int{"ok": 1}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		},
	})
	defer close(block)
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := s.Submit(KindPredict, []byte(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	resp, body := getJSON(t, base+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	var views []View
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("listed %d jobs, want 3: %s", len(views), body)
	}
	for i := range views {
		if views[i].ID != ids[i] {
			t.Fatalf("jobs not in submission order: %v vs %v", views[i].ID, ids[i])
		}
	}

	// One is running (worker picked it up), the rest queued.
	resp, body = getJSON(t, base+"/v1/jobs?state=queued")
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.State != StateQueued {
			t.Fatalf("filter leaked state %s", v.State)
		}
	}

	resp, body = getJSON(t, base+"/v1/jobs?limit=2")
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("limit=2 returned %d", len(views))
	}

	resp, _ = getJSON(t, base+"/v1/jobs?state=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state filter: %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, base+"/v1/jobs?limit=-1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative limit: %d", resp.StatusCode)
	}
}

// TestSessionMetricsExposed checks the session gauges appear in /metrics
// and that drain closes live SSE streams.
func TestSessionMetricsExposed(t *testing.T) {
	s, base := httpFixture(t, Config{Workers: 1})
	st := createTestSession(t, base)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sessions/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	_, body := getJSON(t, base+"/metrics")
	for _, want := range []string{
		"emiserve_sessions_active 1",
		"emiserve_sessions_created_total 1",
		"emiserve_session_event_streams 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Drain terminates the stream and rejects new sessions.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break // stream ended
		}
		if time.Now().After(deadline) {
			t.Fatal("SSE stream still open after drain")
		}
	}
	cresp, cbody := postJSON(t, base+"/v1/sessions", `{"synthetic":{"n":4}}`)
	if cresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d %s", cresp.StatusCode, cbody)
	}
}
