package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies: netlists and designs are text files
// of at most a few hundred kB; anything larger is abuse.
const maxBodyBytes = 8 << 20

// Handler returns the HTTP surface of the server:
//
//	POST   /v1/predict          submit an interference prediction
//	POST   /v1/place            submit an automatic placement
//	POST   /v1/couple           submit a coupling-vs-distance extraction
//	POST   /v1/explore          submit a design-space exploration (streams fronts)
//	POST   /v1/yield            submit a Monte Carlo EMI yield analysis
//	GET    /v1/jobs             list retained jobs (?state=&type=&limit=)
//	GET    /v1/jobs/{id}        job status and result (?wait=1 blocks)
//	GET    /v1/jobs/{id}/events job progress stream, server-sent events
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /healthz             liveness (always 200 while the process serves)
//	GET    /readyz              readiness (503 while draining or recovering)
//	GET    /metrics             Prometheus text exposition
//	GET    /debug/trace/{job}   job trace, Chrome trace_event JSON
//
// plus the replica half of the cluster session-takeover protocol under
// /cluster (see cluster.go in this package),
//
// plus the interactive design-session surface under /v1/sessions (see
// session.go in this package). Every request passes a structured-logging
// middleware (method, path, status, duration and — when a handler tagged
// one — the job or session ID via the X-Job-ID / X-Session-ID response
// headers).
//
// Submissions return 202 with the job view; ?wait=1 blocks until the job
// finishes and returns 200 with the result inline. A waiting client that
// disconnects releases its interest — when it was the only one, the job
// is cancelled (the client-abort path).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.submitHandler(KindPredict))
	mux.HandleFunc("POST /v1/place", s.submitHandler(KindPlace))
	mux.HandleFunc("POST /v1/couple", s.submitHandler(KindCouple))
	mux.HandleFunc("POST /v1/explore", s.submitHandler(KindExplore))
	mux.HandleFunc("POST /v1/yield", s.submitHandler(KindYield))
	mux.HandleFunc("GET /v1/jobs", s.listJobsHandler)
	mux.HandleFunc("GET /v1/jobs/{id}", s.jobHandler)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.jobEventsHandler)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelHandler)
	mux.HandleFunc("POST /v1/sessions", s.createSessionHandler)
	mux.HandleFunc("GET /v1/sessions", s.listSessionsHandler)
	mux.HandleFunc("GET /v1/sessions/{id}", s.getSessionHandler)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.deleteSessionHandler)
	mux.HandleFunc("POST /v1/sessions/{id}/edits", s.editSessionHandler)
	mux.HandleFunc("POST /v1/sessions/{id}/undo", s.undoSessionHandler)
	mux.HandleFunc("POST /v1/sessions/{id}/redo", s.redoSessionHandler)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.sessionEventsHandler)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.snapshotSessionHandler)
	mux.HandleFunc("GET /cluster/sessions/{id}/log", s.sessionLogHandler)
	mux.HandleFunc("POST /cluster/sessions/{id}/seal", s.sealHandler)
	mux.HandleFunc("POST /cluster/sessions/{id}/unseal", s.unsealHandler)
	mux.HandleFunc("POST /cluster/sessions/{id}/takeover", s.takeoverHandler)
	mux.HandleFunc("POST /cluster/sessions/{id}/release", s.releaseHandler)
	mux.HandleFunc("GET /healthz", s.healthHandler)
	mux.HandleFunc("GET /readyz", s.readyHandler)
	mux.HandleFunc("GET /metrics", s.metricsHandler)
	mux.HandleFunc("GET /debug/trace/{job}", s.traceHandler)
	return s.withLogging(mux)
}

// statusWriter captures the response status for the logging middleware.
// It forwards Flush so the SSE stream keeps working behind it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// RequestIDHeader correlates log lines across processes: the cluster
// router mints one ID per inbound request and forwards it; the replica
// echoes it on the response and tags its request log line with it, so
// `grep <id>` finds both halves of a routed request.
const RequestIDHeader = "X-Request-ID"

// withLogging is the request-logging middleware: one structured line per
// request with method, path, status, duration, the job or session ID
// when the handler tagged the response with one, and the router-minted
// request ID when the request carried one.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(RequestIDHeader)
		if rid != "" {
			// Echo before the handler commits the header block.
			w.Header().Set(RequestIDHeader, rid)
		}
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"dur_ms", float64(time.Since(t0)) / 1e6,
		}
		if rid != "" {
			attrs = append(attrs, "request_id", rid)
		}
		if id := sw.Header().Get("X-Job-ID"); id != "" {
			attrs = append(attrs, "job", id)
		}
		if id := sw.Header().Get("X-Session-ID"); id != "" {
			attrs = append(attrs, "session", id)
		}
		s.cfg.Logger.Info("request", attrs...)
	})
}

// traceHandler serves a job's span collection as Chrome trace_event JSON
// (load it in chrome://tracing or Perfetto). Jobs answered straight from
// the result store never ran and have no trace.
func (s *Server) traceHandler(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("job"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	w.Header().Set("X-Job-ID", j.ID)
	j.mu.Lock()
	tr := j.trace
	j.mu.Unlock()
	if tr == nil {
		writeError(w, http.StatusNotFound, "serve: job has no trace (answered from the result store)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = tr.WriteChrome(w)
}

func (s *Server) submitHandler(kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		wait := boolParam(r, "wait")
		// A router in front of this replica propagates its request trace
		// via traceparent; the job's trace adopts the ID so the two
		// processes' spans merge under one identity (see /cluster/trace).
		tid, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		j, err := s.submit(kind, body, !wait, tid)
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		w.Header().Set("X-Job-ID", j.ID)
		if !wait {
			writeJSON(w, http.StatusAccepted, j.View())
			return
		}
		defer s.Detach(j)
		if err := j.Wait(r.Context()); err != nil {
			// Client gone; Detach may cancel the job. No response possible.
			return
		}
		writeJSON(w, statusOf(j), j.View())
	}
}

func (s *Server) jobHandler(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	w.Header().Set("X-Job-ID", j.ID)
	if boolParam(r, "wait") {
		if err := j.Wait(r.Context()); err != nil {
			return // client gone
		}
	}
	writeJSON(w, statusOf(j), j.View())
}

// jobEventsHandler streams a job's intermediate results (per-generation
// Pareto fronts, running yield estimates) as server-sent events. Each
// progress event uses its stage as the SSE event name ("front", "yield")
// and its per-job sequence number as the id; a client reconnecting with
// Last-Event-ID (or ?after=N) replays what the bounded ring still holds.
// The stream opens with a "hello" event carrying the job view and — when
// the job reaches a terminal state — closes with a "done" event carrying
// the final view (including the result).
func (s *Server) jobEventsHandler(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	ch, _, cancel := j.progress.subscribe(after)
	defer cancel()
	s.m.jobStreams.Add(1)
	defer s.m.jobStreams.Add(-1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Job-ID", j.ID)
	w.WriteHeader(http.StatusOK)
	last := after
	writeSSE(w, "hello", last, j.View())
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Closed stream: the job is terminal, or this client fell
				// too far behind (it reconnects with ?after= to resume).
				if j.State().terminal() {
					writeSSE(w, "done", last, j.View())
					fl.Flush()
				}
				return
			}
			last = ev.Seq
			writeSSE(w, ev.Stage, ev.Seq, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) cancelHandler(w http.ResponseWriter, r *http.Request) {
	acted, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if !acted {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// healthHandler is pure liveness: 200 for as long as the process can
// answer HTTP at all, draining included. Routing decisions belong to
// /readyz — a load balancer that keys on /healthz would take a
// draining replica out of rotation before its in-flight work finished,
// which is exactly what drain is for.
func (s *Server) healthHandler(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"workers":     s.cfg.Workers,
		"queue_depth": s.QueueDepth(),
	})
}

// readyHandler is readiness: 200 with the queue headroom while the
// replica accepts new work, 503 + Retry-After while draining. The
// queue_depth/queue_cap pair feeds the cluster router's admission
// control.
func (s *Server) readyHandler(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ready",
		"workers":     s.cfg.Workers,
		"queue_depth": s.QueueDepth(),
		"queue_cap":   s.QueueCap(),
		"sessions":    s.sessions.Len(),
	})
}

func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

// statusOf maps a job's state to the HTTP status of its view: pending and
// successful jobs are 200, failures 500, cancellations 499 (the de-facto
// client-closed-request code).
func statusOf(j *Job) int {
	switch j.State() {
	case StateFailed:
		return http.StatusInternalServerError
	case StateCancelled:
		return 499
	default:
		return http.StatusOK
	}
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	return err == nil && b
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
