package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedPredictRunner mimics the span shape of the real predict pipeline
// so the observability tests don't need a full solve.
func tracedPredictRunner(ctx context.Context, req []byte) (any, error) {
	ctx, sp := obs.Start(ctx, "parse")
	sp.End()
	ctx, sp = obs.Start(ctx, "emi.spectrum")
	_, in := obs.Start(ctx, "mna.sweep")
	in.Int("freqs", 42)
	in.End()
	sp.End()
	return map[string]int{"answer": 42}, nil
}

// TestJobTimingsPhases verifies the acceptance criterion that a predict
// job's View carries a timings breakdown covering at least five distinct
// pipeline phases (queue wait, the kind span, and the nested work spans).
func TestJobTimingsPhases(t *testing.T) {
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{KindPredict: tracedPredictRunner},
	})
	resp, body := postJSON(t, base+"/v1/predict?wait=1", `{"n":1}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	for _, tm := range v.Timings {
		phases[tm.Phase] = true
		if tm.Calls < 1 {
			t.Errorf("phase %s has %d calls", tm.Phase, tm.Calls)
		}
	}
	for _, want := range []string{"job", "queue.wait", "predict", "parse", "emi.spectrum", "mna.sweep"} {
		if !phases[want] {
			t.Errorf("timings missing phase %q (got %v)", want, phases)
		}
	}
	if len(phases) < 5 {
		t.Fatalf("want >= 5 distinct phases, got %d: %v", len(phases), phases)
	}
}

// TestDebugTraceEndpoint exercises GET /debug/trace/{job}: Chrome
// trace_event JSON for a ran job, 404 for a store-answered one.
func TestDebugTraceEndpoint(t *testing.T) {
	s, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{KindPredict: tracedPredictRunner},
	})
	resp, body := postJSON(t, base+"/v1/predict?wait=1", `{"n":2}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	resp, body = getJSON(t, base+"/debug/trace/"+v.ID)
	if resp.StatusCode != 200 {
		t.Fatalf("trace status %d body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		names[ev.Name] = true
	}
	if !names["predict"] || !names["mna.sweep"] {
		t.Errorf("trace events missing pipeline spans: %v", names)
	}

	// A byte-identical resubmission is answered from the result store
	// under the ORIGINAL job ID — an alias ID would have no write-ahead
	// record and would evaporate on restart.
	resp, body = postJSON(t, base+"/v1/predict?wait=1", `{"n":2}`)
	if resp.StatusCode != 200 {
		t.Fatalf("resubmit status %d body %s", resp.StatusCode, body)
	}
	var v2 View
	if err := json.Unmarshal(body, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.ID != v.ID {
		t.Fatalf("resubmit got job ID %s — want the original %s re-served from the store", v2.ID, v.ID)
	}

	_ = s
}

// TestMetricsPhaseHistograms asserts the /metrics exposition carries the
// per-phase latency histograms after a job ran, and that every exposed
// series family is documented with # HELP and # TYPE lines.
func TestMetricsPhaseHistograms(t *testing.T) {
	s, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{KindPredict: tracedPredictRunner},
	})
	if resp, body := postJSON(t, base+"/v1/predict?wait=1", `{"n":3}`); resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	resp, body := getJSON(t, base+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`emiserve_phase_seconds_bucket{phase="predict",le="+Inf"}`,
		`emiserve_phase_seconds_bucket{phase="mna.sweep",le="+Inf"}`,
		`emiserve_phase_seconds_sum{phase="queue.wait"}`,
		`emiserve_phase_seconds_count{phase="job"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Every series family must carry # HELP and # TYPE headers.
	help := map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "#" {
			switch fields[1] {
			case "HELP":
				help[fields[2]] = true
			case "TYPE":
				typed[fields[2]] = true
			}
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			family = strings.TrimSuffix(family, suf)
		}
		if !help[family] || !typed[family] {
			t.Errorf("series %s lacks # HELP/# TYPE for family %s", name, family)
		}
	}
	_ = s
}

// TestRequestLoggingMiddleware captures the structured request log and
// checks the one-line-per-request contract: method, path, status,
// duration and the job ID of the submission it answered.
func TestRequestLoggingMiddleware(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	_, base := httpFixture(t, Config{
		Workers: 1,
		Logger:  logger,
		Runners: map[Kind]Runner{KindPredict: tracedPredictRunner},
	})
	resp, body := postJSON(t, base+"/v1/predict?wait=1", `{"n":4}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	// The log line is written after the handler returns; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		for _, l := range strings.Split(buf.String(), "\n") {
			if strings.Contains(l, "msg=request") && strings.Contains(l, "path=/v1/predict") {
				line = l
			}
		}
		if line != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if line == "" {
		t.Fatalf("no request log line for /v1/predict in:\n%s", buf.String())
	}
	for _, want := range []string{"method=POST", "status=200", "dur_ms=", fmt.Sprintf("job=%s", v.ID)} {
		if !strings.Contains(line, want) {
			t.Errorf("request log line missing %q: %s", want, line)
		}
	}
}

// TestSessionEditFeedsPhaseHistograms verifies the untraced HTTP edit
// path still populates the session.edit and drc.recheck latency series.
func TestSessionEditFeedsPhaseHistograms(t *testing.T) {
	_, base := httpFixture(t, Config{Workers: 1})
	design := `DESIGN obs-sess
BOARDS 1
CLEARANCE 1.0
AREA board 0 0 0 40 0 40 40 0 40
COMP A 5.0 5.0 5.0 GROUP g
COMP B 5.0 5.0 5.0 GROUP g
NET n 0.0 A B
END
`
	req, _ := json.Marshal(map[string]string{"design": design})
	resp, body := postJSON(t, base+"/v1/sessions", string(req))
	if resp.StatusCode != 201 {
		t.Fatalf("create status %d body %s", resp.StatusCode, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	edit := `{"op":"move","ref":"A","x_mm":12,"y_mm":12}`
	resp, body = postJSON(t, base+"/v1/sessions/"+created.ID+"/edits", edit)
	if resp.StatusCode != 200 {
		t.Fatalf("edit status %d body %s", resp.StatusCode, body)
	}
	_, metrics := getJSON(t, base+"/metrics")
	for _, want := range []string{
		`emiserve_phase_seconds_count{phase="session.edit"}`,
		`emiserve_phase_seconds_count{phase="drc.recheck"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q after a session edit", want)
		}
	}
}

// TestSubmitAdoptsTraceparent: a submission carrying a W3C traceparent
// header joins the caller's trace — the job's exported Chrome document
// anchors itself with the propagated trace ID, so a router-side
// fragment merge yields one distributed trace.
func TestSubmitAdoptsTraceparent(t *testing.T) {
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{KindPredict: tracedPredictRunner},
	})
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp, body := postWithHeader(t, base+"/v1/predict?wait=1", `{"n":7}`,
		map[string]string{obs.TraceparentHeader: tp})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	resp, body = getJSON(t, base+"/debug/trace/"+v.ID)
	if resp.StatusCode != 200 {
		t.Fatalf("trace status %d body %s", resp.StatusCode, body)
	}
	var doc obs.ChromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if got := doc.OtherData["traceId"]; got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("job trace ID %q, want the propagated one", got)
	}
	if doc.OtherData["startUnixUs"] == "" {
		t.Fatal("job trace has no startUnixUs anchor for cross-process merge")
	}

	// Without the header, the job still gets a trace — a freshly minted,
	// non-zero ID.
	resp, body = postJSON(t, base+"/v1/predict?wait=1", `{"n":8}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	_, body = getJSON(t, base+"/debug/trace/"+v.ID)
	doc = obs.ChromeDoc{}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	id, err := obs.ParseTraceID(doc.OtherData["traceId"])
	if err != nil || id.IsZero() {
		t.Fatalf("unpropagated job trace ID %q invalid: %v", doc.OtherData["traceId"], err)
	}
	if id.String() == "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatal("fresh job reused the previous trace ID")
	}
}

// TestRequestIDEchoAndLog: a replica echoes the router-minted
// X-Request-ID on the response and tags its request log line with it,
// so router and replica log lines correlate by ID.
func TestRequestIDEchoAndLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	_, base := httpFixture(t, Config{
		Workers: 1,
		Logger:  logger,
		Runners: map[Kind]Runner{KindPredict: tracedPredictRunner},
	})
	const rid = "deadbeef01020304"
	resp, body := postWithHeader(t, base+"/v1/predict?wait=1", `{"n":9}`,
		map[string]string{RequestIDHeader: rid})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(RequestIDHeader); got != rid {
		t.Fatalf("response request ID %q, want %q", got, rid)
	}
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		for _, l := range strings.Split(buf.String(), "\n") {
			if strings.Contains(l, "msg=request") && strings.Contains(l, "request_id="+rid) {
				line = l
			}
		}
		if line != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if line == "" {
		t.Fatalf("no request log line tagged request_id=%s in:\n%s", rid, buf.String())
	}
}
