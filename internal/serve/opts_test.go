package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/linalg"
)

// TestComputeOptsResolve pins the per-job numerics knob validation: the
// solver names mirror the CLI -solver flag, theta is the hierarchical
// extraction accuracy in [0, 1).
func TestComputeOptsResolve(t *testing.T) {
	cases := []struct {
		opts ComputeOpts
		mode linalg.SolverMode
		ok   bool
	}{
		{ComputeOpts{}, linalg.ModeAuto, true},
		{ComputeOpts{Solver: "auto"}, linalg.ModeAuto, true},
		{ComputeOpts{Solver: "dense"}, linalg.ModeDense, true},
		{ComputeOpts{Solver: "sparse"}, linalg.ModeSparse, true},
		{ComputeOpts{Solver: "dense", Theta: 0.5}, linalg.ModeDense, true},
		{ComputeOpts{Theta: 0.999}, linalg.ModeAuto, true},
		{ComputeOpts{Solver: "cholesky"}, 0, false},
		{ComputeOpts{Theta: -0.1}, 0, false},
		{ComputeOpts{Theta: 1}, 0, false},
		{ComputeOpts{Theta: 1.5}, 0, false},
	}
	for _, c := range cases {
		mode, err := c.opts.resolve()
		if c.ok && (err != nil || mode != c.mode) {
			t.Errorf("resolve(%+v) = %v, %v; want mode %v", c.opts, mode, err, c.mode)
		}
		if !c.ok && err == nil {
			t.Errorf("resolve(%+v) accepted, want error", c.opts)
		}
	}
}

// TestJobComputeOptsOverHTTP drives the knobs through the real predict
// pipeline: a valid per-job solver works, an invalid one fails the job
// with a diagnostic naming the knob — not a hung or half-done job.
func TestJobComputeOptsOverHTTP(t *testing.T) {
	_, base := httpFixture(t, Config{Workers: 1})
	netlist := `V1 in 0 PULSE(0 12 0 1e-8 1e-8 2.5e-6 5e-6)
R1 in out 10
C1 out 0 1e-9
RL out 0 50
`
	body := func(extra string) string {
		return `{"netlist":` + jsonQuote(netlist) + `,"sources":["V1"],"measure":"out"` + extra + `}`
	}

	for _, solver := range []string{"", `,"solver":"dense"`, `,"solver":"sparse","theta":0.3`} {
		resp, out := postJSON(t, base+"/v1/predict?wait=1", body(solver))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict with %q: status %d: %s", solver, resp.StatusCode, out)
		}
		var v View
		if err := json.Unmarshal(out, &v); err != nil || v.State != StateDone {
			t.Fatalf("predict with %q: state %s (%v)", solver, v.State, err)
		}
	}

	for _, bad := range []string{`,"solver":"qr"`, `,"theta":1.2`} {
		resp, out := postJSON(t, base+"/v1/predict?wait=1", body(bad))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("predict with %q: status %d: %s, want failed job", bad, resp.StatusCode, out)
		}
		var v View
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatal(err)
		}
		mentionsKnob := strings.Contains(v.Error, "solver") || strings.Contains(v.Error, "theta")
		if v.State != StateFailed || !mentionsKnob {
			t.Fatalf("predict with %q: state %s error %q", bad, v.State, v.Error)
		}
	}
}

// jsonQuote JSON-quotes a string (test-local; avoids importing strconv for
// one call and keeps multi-line netlists readable).
func jsonQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
