package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Kind names one of the analysis workloads the service runs.
type Kind string

// The endpoints of the paper's flow exposed as job kinds: the three
// one-shot analyses plus the two streaming batch explorations.
const (
	KindPredict Kind = "predict" // netlist → conducted-emission spectrum
	KindPlace   Kind = "place"   // design → placed layout + DRC verdict
	KindCouple  Kind = "couple"  // component pair → coupling-vs-distance curve
	KindExplore Kind = "explore" // project → Pareto front over placements and sweeps
	KindYield   Kind = "yield"   // project → Monte Carlo EMI yield curve
)

// State is a job's lifecycle state.
type State string

// Job lifecycle: queued → running → one of the terminal states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one queued, running or finished analysis. All mutable fields are
// guarded by mu; the done channel closes exactly once when the job reaches
// a terminal state.
type Job struct {
	ID      string
	Kind    Kind
	Key     engine.Key // content hash of (kind, request body)
	Created time.Time

	req []byte // the submitted request body, handed to the runner

	mu       sync.Mutex
	state    State
	result   json.RawMessage
	errMsg   string
	started  time.Time
	finished time.Time
	deduped  int                // submissions beyond the first that share this job
	pinned   bool               // an async submission owns it: never auto-cancel
	waiters  int                // attached waiting submissions
	canceled bool               // explicit cancellation was requested
	requeue  bool               // drain cancelled it; durable state stays queued
	cancel   context.CancelFunc // live while running
	done     chan struct{}

	trace   *obs.Trace        // per-job span collection; nil for store-answered jobs
	timings []obs.PhaseTiming // aggregated on completion from trace

	// progress is the job's intermediate-result stream (see progress.go).
	// Created with the job and closed with it, so subscribers of jobs
	// that never publish (or never run) still terminate cleanly.
	progress *progressLog
}

func newJob(id string, kind Kind, key engine.Key, req []byte, now time.Time) *Job {
	return &Job{
		ID: id, Kind: kind, Key: key, Created: now,
		req:      req,
		state:    StateQueued,
		done:     make(chan struct{}),
		progress: newProgressLog(),
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx is done, returning the
// context's error in the latter case.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result returns the JSON result and error message of a terminal job.
func (j *Job) Result() (json.RawMessage, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.errMsg
}

// View is the JSON representation of a job for the status endpoint.
type View struct {
	ID       string          `json:"id"`
	Kind     Kind            `json:"kind"`
	State    State           `json:"state"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Deduped  int             `json:"deduped,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`

	// Timings is the per-phase breakdown aggregated from the job's trace,
	// present once the job has run (store-answered jobs never ran).
	Timings []obs.PhaseTiming `json:"timings,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID: j.ID, Kind: j.Kind, State: j.state,
		Created: j.Created,
		Deduped: j.deduped,
		Error:   j.errMsg,
		Result:  j.result,
		Timings: j.timings,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// hashRequest derives the content key a submission dedups under: the kind
// plus the raw request bytes. Two byte-identical bodies are one
// computation; semantically equal but differently formatted JSON is
// deliberately not canonicalized — a false negative costs one redundant
// solve, never a wrong result.
func hashRequest(kind Kind, body []byte) engine.Key {
	h := engine.NewHasher()
	h.String(string(kind))
	h.Bytes(body)
	return h.Sum()
}
