package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestProgressLogReplay pins the ring semantics: subscribers replay events
// after their cursor, live events fan out, and the ring survives close so
// late subscribers still see history.
func TestProgressLogReplay(t *testing.T) {
	t.Parallel()
	pl := newProgressLog()
	now := time.Unix(100, 0)
	for i := 1; i <= 3; i++ {
		if !pl.publish("front", map[string]int{"gen": i}, now) {
			t.Fatalf("publish %d rejected", i)
		}
	}

	// Full replay from the beginning.
	ch, latest, cancel := pl.subscribe(0)
	if latest != 3 {
		t.Fatalf("latest seq %d, want 3", latest)
	}
	for i := 1; i <= 3; i++ {
		ev := <-ch
		if ev.Seq != uint64(i) || ev.Stage != "front" {
			t.Fatalf("replayed event %+v, want seq %d", ev, i)
		}
	}

	// A live event reaches the open subscriber.
	pl.publish("yield", "running", now)
	if ev := <-ch; ev.Seq != 4 || ev.Stage != "yield" {
		t.Fatalf("live event %+v", ev)
	}
	cancel()

	// A cursor skips already-seen history.
	ch2, _, cancel2 := pl.subscribe(3)
	if ev := <-ch2; ev.Seq != 4 {
		t.Fatalf("cursor replay %+v, want seq 4", ev)
	}
	cancel2()

	// Close ends live subscribers but keeps the ring for replay.
	ch3, _, cancel3 := pl.subscribe(4)
	defer cancel3()
	pl.close()
	if _, ok := <-ch3; ok {
		t.Fatal("subscriber channel still open after close")
	}
	ch4, latest4, cancel4 := pl.subscribe(0)
	defer cancel4()
	if latest4 != 4 {
		t.Fatalf("post-close latest %d, want 4", latest4)
	}
	n := 0
	for range ch4 {
		n++
	}
	if n != 4 {
		t.Fatalf("post-close replay delivered %d events, want 4", n)
	}
}

// TestProgressLogRingCap: the ring keeps only the newest progressRingCap
// events, and sequence numbers keep counting across the trim.
func TestProgressLogRingCap(t *testing.T) {
	t.Parallel()
	pl := newProgressLog()
	now := time.Unix(0, 0)
	total := progressRingCap + 17
	for i := 0; i < total; i++ {
		pl.publish("s", i, now)
	}
	ch, latest, cancel := pl.subscribe(0)
	defer cancel()
	if latest != uint64(total) {
		t.Fatalf("latest %d, want %d", latest, total)
	}
	first := <-ch
	if first.Seq != uint64(total-progressRingCap+1) {
		t.Fatalf("oldest retained seq %d, want %d", first.Seq, total-progressRingCap+1)
	}
}

// sseEvent is one parsed frame of a text/event-stream response.
type sseEvent struct {
	name string
	id   string
	data string
}

// readSSE parses frames from the stream until the given event name arrives
// or the limit is hit.
func readSSE(t *testing.T, r *bufio.Reader, until string, limit int) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for len(events) < limit {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early (%v) after %d events", err, len(events))
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == until {
					return events
				}
			}
			cur = sseEvent{}
		}
	}
	t.Fatalf("event %q not seen within %d frames", until, limit)
	return nil
}

// TestHTTPJobEvents streams a job's progress over SSE: hello first, one
// frame per published stage with the sequence as the event id, and a final
// done frame carrying the terminal view.
func TestHTTPJobEvents(t *testing.T) {
	release := make(chan struct{})
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) {
				for i := 1; i <= 3; i++ {
					Publish(ctx, "front", map[string]int{"gen": i})
				}
				<-release
				return "done", nil
			},
		},
	})
	_, body := postJSON(t, base+"/v1/predict", `{"x":1}`)
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	got := readSSE(t, r, "front", 10)
	if got[0].name != "hello" {
		t.Fatalf("first event %q, want hello", got[0].name)
	}
	if !strings.Contains(got[len(got)-1].data, `"gen"`) {
		t.Fatalf("front payload %q", got[len(got)-1].data)
	}
	// The job is still running: unblock it and expect the remaining fronts
	// then the done frame with the final view.
	close(release)
	rest := readSSE(t, r, "done", 10)
	last := rest[len(rest)-1]
	var final View
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("done frame state %s", final.State)
	}

	// Reconnect with Last-Event-ID: only events after the cursor replay.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events := readSSE(t, bufio.NewReader(resp2.Body), "done", 10)
	for _, ev := range events {
		if ev.name == "front" {
			seq, _ := strconv.Atoi(ev.id)
			if seq <= 2 {
				t.Fatalf("cursor ignored: replayed seq %d", seq)
			}
		}
	}

	// Unknown jobs 404.
	resp3, err := http.Get(base + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events status %d", resp3.StatusCode)
	}
}

// TestHTTPJobsTypeFilter: GET /v1/jobs?type= restricts the listing to one
// job kind and composes with the state filter.
func TestHTTPJobsTypeFilter(t *testing.T) {
	_, base := httpFixture(t, Config{
		Workers: 1,
		Runners: map[Kind]Runner{
			KindPredict: func(ctx context.Context, req []byte) (any, error) { return "p", nil },
			KindCouple:  func(ctx context.Context, req []byte) (any, error) { return "c", nil },
		},
	})
	postJSON(t, base+"/v1/predict?wait=1", `{"a":1}`)
	postJSON(t, base+"/v1/predict?wait=1", `{"a":2}`)
	postJSON(t, base+"/v1/couple?wait=1", `{"b":1}`)

	list := func(q string) []View {
		resp, body := getJSON(t, base+"/v1/jobs"+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q status %d body %s", q, resp.StatusCode, body)
		}
		var out []View
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if got := list(""); len(got) != 3 {
		t.Fatalf("unfiltered list has %d jobs, want 3", len(got))
	}
	preds := list("?type=predict")
	if len(preds) != 2 {
		t.Fatalf("type=predict returned %d jobs, want 2", len(preds))
	}
	for _, v := range preds {
		if v.Kind != KindPredict {
			t.Fatalf("type filter leaked kind %s", v.Kind)
		}
	}
	if got := list("?type=couple&state=done"); len(got) != 1 || got[0].Kind != KindCouple {
		t.Fatalf("combined filter returned %+v", got)
	}
	if got := list("?type=couple&state=failed"); len(got) != 0 {
		t.Fatalf("done couple job listed under state=failed: %+v", got)
	}

	resp, _ := getJSON(t, base+"/v1/jobs?type=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown type status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPExploreEndToEnd submits a tiny tournament on the builtin buck
// project, watches the SSE stream for an intermediate front, and checks
// the final response invariants.
func TestHTTPExploreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("placement tournaments in -short mode")
	}
	_, base := httpFixture(t, Config{Workers: 2})
	req := `{"project":{"builtin":"buck"},"objectives":["area","net"],` +
		`"population":4,"generations":2,"seed":11}`

	_, body := postJSON(t, base+"/v1/explore", req)
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, bufio.NewReader(resp.Body), "done", 64)
	fronts := 0
	for _, ev := range events {
		if ev.name == "front" {
			fronts++
		}
	}
	if fronts < 1 {
		t.Fatalf("no intermediate front on the event stream (%d events)", len(events))
	}

	var final View
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("explore job ended %s: %s", final.State, final.Error)
	}
	var res ExploreResponse
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Generations != 3 || res.Evaluations != 4+2*4 {
		t.Fatalf("generations/evaluations = %d/%d", res.Generations, res.Evaluations)
	}
	for _, c := range res.Front {
		for _, name := range res.Objectives {
			if _, ok := c.Objectives[name]; !ok {
				t.Fatalf("front member missing objective %q: %+v", name, c)
			}
		}
	}
	// At least the first feasible member carries a realized layout.
	if !strings.Contains(res.Front[0].Design, " AT ") {
		t.Fatalf("front[0] has no placed design:\n%s", res.Front[0].Design)
	}

	// Oversize requests are rejected before queueing.
	resp2, body2 := postJSON(t, base+"/v1/explore?wait=1",
		`{"project":{"builtin":"buck"},"population":1000}`)
	if resp2.StatusCode != http.StatusInternalServerError ||
		!strings.Contains(string(body2), "population") {
		t.Fatalf("oversize population: %d %s", resp2.StatusCode, body2)
	}
}

// TestHTTPYieldEndToEnd submits a small Monte-Carlo run against the
// builtin buck project with autoplacement.
func TestHTTPYieldEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("EMI solves in -short mode")
	}
	_, base := httpFixture(t, Config{Workers: 2})
	req := `{"project":{"builtin":"buck"},"samples":6,"batch":3,"seed":17,` +
		`"max_freq":2e6,"autoplace":true}`
	resp, body := postJSON(t, base+"/v1/yield?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("yield status %d body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	var res YieldResponse
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Samples != 6 || res.Batches != 2 {
		t.Fatalf("samples/batches = %d/%d, want 6/2", res.Samples, res.Batches)
	}
	if res.Yield < 0 || res.Yield > 1 || res.CILo > res.Yield || res.CIHi < res.Yield {
		t.Fatalf("yield %v CI [%v, %v]", res.Yield, res.CILo, res.CIHi)
	}
	if res.Perturbed == 0 {
		t.Fatal("no perturbed elements")
	}
	if len(res.FreqsHz) == 0 || len(res.BinPass) != len(res.FreqsHz) {
		t.Fatalf("%d freqs, %d bin passes", len(res.FreqsHz), len(res.BinPass))
	}
	if res.MarginP05DB > res.MarginP50DB || res.MarginP50DB > res.MarginP95DB {
		t.Fatalf("margin percentiles out of order: %v %v %v",
			res.MarginP05DB, res.MarginP50DB, res.MarginP95DB)
	}
}
