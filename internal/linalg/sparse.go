// Sparse LU: compressed-sparse-column storage factored by the classic
// left-looking Gilbert–Peierls algorithm with threshold partial pivoting
// (the KLU/SuperLU family). The expensive symbolic work — the fill-in
// pattern of L and U, the per-column topological reach sets and the row
// pivot order — is computed by the first Factor and *reused* by every
// subsequent Factor on the same Pattern: a numeric refactorization is a
// straight replay of stored positions with no graph traversal and no
// allocation, which is exactly the shape of an MNA frequency sweep
// (fixed stamp pattern, new values per frequency). A pivot that decays
// below the relative singularity threshold during a replay triggers a
// transparent full re-factorization with fresh pivoting.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/engine"
)

// scalar is the element domain shared by the real and complex backends.
type scalar interface {
	float64 | complex128
}

// absScalar returns |v| for either element type; the complex branch uses
// the modulus (pivot choice wants true magnitude, unlike the cheap
// 1-norm used for dense column scales).
func absScalar[T scalar](v T) float64 {
	switch x := any(v).(type) {
	case float64:
		return math.Abs(x)
	case complex128:
		return cmplx.Abs(x)
	}
	return 0
}

// diagPrefTol is the threshold-pivoting relaxation: the natural diagonal
// row is kept as pivot whenever its magnitude is within this factor of
// the column maximum. Diagonal pivots preserve the near-symmetric MNA
// structure the minimum-degree ordering was computed for, so fill-in
// stays close to the symbolic prediction across refactorizations.
const diagPrefTol = 0.1

// errRepivot reports that a numeric refactorization met a pivot that
// has become negligible under the retained pivot order; the caller
// re-runs a full factorization with fresh pivoting.
var errRepivot = fmt.Errorf("linalg: retained pivot order decayed")

// spLU is the shared factorization engine behind SparseRealLU and
// SparseComplexLU.
type spLU[T scalar] struct {
	n   int
	pat *Pattern // pattern the symbolic analysis belongs to

	// Factors, CSC per elimination column k. L carries a unit diagonal
	// as its first entry; U stores its diagonal (the pivot) last.
	lp, up []int32
	liOrig []int32 // L row indices in original row space (refactor scatter)
	liPiv  []int32 // the same rows in pivot space (triangular solves)
	ui     []int32 // U row indices in pivot space
	lx, ux []T

	// Symbolic state retained for replay.
	patPtr []int32 // per-column reach-set pointers
	patRow []int32 // reach sets, original rows, dependency order
	pinv   []int32 // original row -> pivot position
	pivRow []int32 // per column: original row chosen as pivot
	scale  []float64

	// Scratch.
	x       []T
	y       []T
	visited []bool
	stk     []int32
	ptr     []int32
	topoBuf []int32

	haveSymbolic bool
}

// factorAuto numerically (re)factorizes the values av laid out on pat:
// a replay of the retained symbolic analysis when the pattern matches,
// a full symbolic+numeric factorization otherwise (or when the retained
// pivot order has decayed).
func (f *spLU[T]) factorAuto(pat *Pattern, av []T) error {
	engine.CountFactorSparse()
	if f.haveSymbolic && f.pat == pat {
		err := f.refactor(av)
		if err != errRepivot {
			return err
		}
	}
	return f.factorFull(pat, av)
}

func (f *spLU[T]) init(pat *Pattern) {
	n := pat.N
	f.n = n
	f.pat = pat
	if cap(f.x) < n {
		f.x = make([]T, n)
		f.y = make([]T, n)
		f.visited = make([]bool, n)
		f.pinv = make([]int32, n)
		f.pivRow = make([]int32, n)
		f.scale = make([]float64, n)
		f.stk = make([]int32, 0, n)
		f.ptr = make([]int32, 0, n)
	}
	f.x = f.x[:n]
	f.y = f.y[:n]
	f.visited = f.visited[:n]
	f.pinv = f.pinv[:n]
	f.pivRow = f.pivRow[:n]
	f.scale = f.scale[:n]
}

// factorFull runs the symbolic+numeric left-looking factorization with
// threshold partial pivoting, recording every structure the replay path
// needs.
func (f *spLU[T]) factorFull(pat *Pattern, av []T) error {
	f.haveSymbolic = false
	f.init(pat)
	n := f.n
	for i := range f.x {
		f.x[i] = 0
		f.visited[i] = false
		f.pinv[i] = -1
	}
	f.lp = append(f.lp[:0], 0)
	f.up = append(f.up[:0], 0)
	f.patPtr = append(f.patPtr[:0], 0)
	f.liOrig = f.liOrig[:0]
	f.ui = f.ui[:0]
	f.lx = f.lx[:0]
	f.ux = f.ux[:0]
	f.patRow = f.patRow[:0]
	x := f.x

	for k := 0; k < n; k++ {
		col := pat.q[k]
		// Column scale for the relative singularity threshold, from the
		// original values like the dense kernel.
		sc := 0.0
		for p := pat.ColPtr[col]; p < pat.ColPtr[col+1]; p++ {
			if a := absScalar(av[p]); a > sc {
				sc = a
			}
		}
		f.scale[k] = sc

		// Symbolic: rows reachable from A(:,col) through the columns of L,
		// in dependency (reverse postorder) order.
		topo := f.reach(pat, col)
		f.patRow = append(f.patRow, topo...)
		f.patPtr = append(f.patPtr, int32(len(f.patRow)))

		// Numeric: sparse triangular solve x = L \ A(:,col).
		for p := pat.ColPtr[col]; p < pat.ColPtr[col+1]; p++ {
			x[pat.RowIdx[p]] = av[p]
		}
		for _, i := range topo {
			j := f.pinv[i]
			if j < 0 {
				continue
			}
			xj := x[i] // L diagonal is 1, no division
			if xj != 0 {
				for p := f.lp[j] + 1; p < f.lp[j+1]; p++ {
					x[f.liOrig[p]] -= f.lx[p] * xj
				}
			}
		}

		// Pivot: largest magnitude among not-yet-pivotal rows, relaxed
		// toward the natural diagonal within diagPrefTol.
		ipiv, amax := int32(-1), -1.0
		for _, i := range topo {
			if f.pinv[i] < 0 {
				if t := absScalar(x[i]); t > amax {
					amax, ipiv = t, i
				}
			}
		}
		if ipiv < 0 || amax == 0 || amax < pivotTol*sc {
			f.clearColumn(topo)
			return fmt.Errorf("linalg: %w at column %d (pivot %g, column scale %g)",
				ErrSingular, col, math.Max(amax, 0), sc)
		}
		if f.pinv[col] < 0 && absScalar(x[col]) >= diagPrefTol*amax {
			ipiv = col
		}
		pivot := x[ipiv]

		// U(:,k): eliminated rows in reach order, diagonal last.
		for _, i := range topo {
			if j := f.pinv[i]; j >= 0 {
				f.ui = append(f.ui, j)
				f.ux = append(f.ux, x[i])
			}
		}
		f.ui = append(f.ui, int32(k))
		f.ux = append(f.ux, pivot)
		f.up = append(f.up, int32(len(f.ui)))

		f.pinv[ipiv] = int32(k)
		f.pivRow[k] = ipiv

		// L(:,k): unit diagonal first, then the remaining rows scaled.
		f.liOrig = append(f.liOrig, ipiv)
		f.lx = append(f.lx, 1)
		for _, i := range topo {
			if f.pinv[i] < 0 {
				f.liOrig = append(f.liOrig, i)
				f.lx = append(f.lx, x[i]/pivot)
			}
		}
		f.lp = append(f.lp, int32(len(f.liOrig)))

		f.clearColumn(topo)
	}

	// Pivot-space copies of L's row indices for the triangular solves.
	f.liPiv = append(f.liPiv[:0], f.liOrig...)
	for p := range f.liPiv {
		f.liPiv[p] = f.pinv[f.liPiv[p]]
	}
	f.haveSymbolic = true
	return nil
}

func (f *spLU[T]) clearColumn(topo []int32) {
	for _, i := range topo {
		f.x[i] = 0
		f.visited[i] = false
	}
}

// refactor replays the retained symbolic analysis against new values:
// same reach sets, same pivot rows, same L/U positions — value updates
// only. Returns errRepivot when a retained pivot has decayed below the
// singularity threshold.
func (f *spLU[T]) refactor(av []T) error {
	pat := f.pat
	x := f.x
	for k := 0; k < f.n; k++ {
		col := pat.q[k]
		sc := 0.0
		topo := f.patRow[f.patPtr[k]:f.patPtr[k+1]]
		for _, i := range topo {
			x[i] = 0
		}
		for p := pat.ColPtr[col]; p < pat.ColPtr[col+1]; p++ {
			if a := absScalar(av[p]); a > sc {
				sc = a
			}
			x[pat.RowIdx[p]] = av[p]
		}
		f.scale[k] = sc

		upos := f.up[k]
		for _, i := range topo {
			j := f.pinv[i]
			if j >= int32(k) {
				continue
			}
			xj := x[i]
			f.ux[upos] = xj
			upos++
			if xj != 0 {
				for p := f.lp[j] + 1; p < f.lp[j+1]; p++ {
					x[f.liOrig[p]] -= f.lx[p] * xj
				}
			}
		}

		pr := f.pivRow[k]
		pivot := x[pr]
		if a := absScalar(pivot); a == 0 || a < pivotTol*sc {
			for _, i := range topo {
				x[i] = 0
			}
			return errRepivot
		}
		f.ux[upos] = pivot

		lpos := f.lp[k] + 1 // retained unit diagonal
		for _, i := range topo {
			if f.pinv[i] > int32(k) {
				f.lx[lpos] = x[i] / pivot
				lpos++
			}
			x[i] = 0
		}
	}
	return nil
}

// reach returns the rows reachable from the structural nonzeros of
// A(:,col) through the graph of L, in dependency order (reverse
// postorder of the depth-first search). Marks traversed rows visited;
// the caller clears them via clearColumn.
func (f *spLU[T]) reach(pat *Pattern, col int32) []int32 {
	topo := f.topoBuf[:0]
	for p := pat.ColPtr[col]; p < pat.ColPtr[col+1]; p++ {
		if r := pat.RowIdx[p]; !f.visited[r] {
			topo = f.dfs(r, topo)
		}
	}
	f.topoBuf = topo
	for a, b := 0, len(topo)-1; a < b; a, b = a+1, b-1 {
		topo[a], topo[b] = topo[b], topo[a]
	}
	return topo
}

// dfs runs one iterative depth-first search from root, appending rows in
// postorder. Edges lead from an eliminated row to the rows of its L
// column (the rows its elimination updates).
func (f *spLU[T]) dfs(root int32, topo []int32) []int32 {
	stk := append(f.stk[:0], root)
	ptr := append(f.ptr[:0], 0)
	f.visited[root] = true
	for len(stk) > 0 {
		i := stk[len(stk)-1]
		j := f.pinv[i]
		descended := false
		if j >= 0 {
			for p := f.lp[j] + 1 + ptr[len(ptr)-1]; p < f.lp[j+1]; p++ {
				if r := f.liOrig[p]; !f.visited[r] {
					f.visited[r] = true
					ptr[len(ptr)-1] = p + 1 - (f.lp[j] + 1)
					stk = append(stk, r)
					ptr = append(ptr, 0)
					descended = true
					break
				}
			}
		}
		if !descended {
			topo = append(topo, i)
			stk = stk[:len(stk)-1]
			ptr = ptr[:len(ptr)-1]
		}
	}
	f.stk, f.ptr = stk, ptr
	return topo
}

// solve resolves one right-hand side against the retained factors:
// row-permute, unit-lower solve, upper solve, column-permute back.
// Allocation-free; x may alias b.
func (f *spLU[T]) solve(b, x []T) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: dimension mismatch %d/%d vs %d", len(b), len(x), n)
	}
	if !f.haveSymbolic {
		return fmt.Errorf("linalg: sparse solve before factorization")
	}
	engine.CountResolveSparse()
	y := f.y
	for i := 0; i < n; i++ {
		y[f.pinv[i]] = b[i]
	}
	for k := 0; k < n; k++ {
		if yk := y[k]; yk != 0 {
			for p := f.lp[k] + 1; p < f.lp[k+1]; p++ {
				y[f.liPiv[p]] -= f.lx[p] * yk
			}
		}
	}
	for k := n - 1; k >= 0; k-- {
		y[k] /= f.ux[f.up[k+1]-1]
		if yk := y[k]; yk != 0 {
			for p := f.up[k]; p < f.up[k+1]-1; p++ {
				y[f.ui[p]] -= f.ux[p] * yk
			}
		}
	}
	for k := 0; k < n; k++ {
		x[f.pat.q[k]] = y[k]
	}
	return nil
}

// factorNnz returns the retained factor sizes (structural nonzeros of L
// and U) — the fill-in measure the auto heuristic and the benchmarks
// report.
func (f *spLU[T]) factorNnz() (lnz, unz int) { return len(f.liOrig), len(f.ui) }

// SparseReal is a real matrix on a shared immutable Pattern; only the
// values array is per-instance, so sweep workers share one symbolic
// pattern and own their numbers.
type SparseReal struct {
	Pat *Pattern
	V   []float64
}

// NewSparseReal allocates a zero matrix on the pattern.
func NewSparseReal(p *Pattern) *SparseReal {
	return &SparseReal{Pat: p, V: make([]float64, p.Nnz())}
}

// Zero resets every stored value (the pattern is immutable).
func (m *SparseReal) Zero() {
	for i := range m.V {
		m.V[i] = 0
	}
}

// Factor (re)factorizes m into f. Unlike the dense kernel the matrix
// values are not destroyed; f retains its symbolic analysis across calls
// on the same pattern and replays it (see package comment).
func (m *SparseReal) Factor(f *SparseRealLU) error { return f.lu.factorAuto(m.Pat, m.V) }

// SparseRealLU is the sparse factorization of a SparseReal; it
// implements RealFactorizer.
type SparseRealLU struct {
	lu spLU[float64]
}

// SolveFactored solves A·x = b against the retained factorization
// without allocating; x may alias b.
func (f *SparseRealLU) SolveFactored(b, x []float64) error { return f.lu.solve(b, x) }

// FactorNnz returns the structural nonzero counts of the L and U factors.
func (f *SparseRealLU) FactorNnz() (lnz, unz int) { return f.lu.factorNnz() }

// SparseComplex is the complex counterpart of SparseReal.
type SparseComplex struct {
	Pat *Pattern
	V   []complex128
}

// NewSparseComplex allocates a zero matrix on the pattern.
func NewSparseComplex(p *Pattern) *SparseComplex {
	return &SparseComplex{Pat: p, V: make([]complex128, p.Nnz())}
}

// Zero resets every stored value.
func (m *SparseComplex) Zero() {
	for i := range m.V {
		m.V[i] = 0
	}
}

// Factor (re)factorizes m into f; see SparseReal.Factor.
func (m *SparseComplex) Factor(f *SparseComplexLU) error { return f.lu.factorAuto(m.Pat, m.V) }

// SparseComplexLU is the sparse factorization of a SparseComplex; it
// implements ComplexFactorizer.
type SparseComplexLU struct {
	lu spLU[complex128]
}

// SolveFactored solves A·x = b against the retained factorization
// without allocating; x may alias b.
func (f *SparseComplexLU) SolveFactored(b, x []complex128) error { return f.lu.solve(b, x) }

// FactorNnz returns the structural nonzero counts of the L and U factors.
func (f *SparseComplexLU) FactorNnz() (lnz, unz int) { return f.lu.factorNnz() }
