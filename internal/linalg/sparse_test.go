package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSystem generates a strictly diagonally dominant n×n system as a
// flat stamp stream (duplicates included, exercising slot accumulation)
// plus per-entry real values. Diagonal dominance keeps the system
// nonsingular and well-conditioned, so dense and sparse backends must
// both succeed and agree.
func randomSystem(n int, density float64, rng *rand.Rand) (flat []int, vals []float64) {
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() >= density {
				continue
			}
			v := rng.Float64()*2 - 1
			flat = append(flat, i*n+j)
			vals = append(vals, v)
			rowAbs[i] += math.Abs(v)
			if rng.Float64() < 0.1 { // duplicate stamp on the same cell
				w := rng.Float64()*2 - 1
				flat = append(flat, i*n+j)
				vals = append(vals, w)
				rowAbs[i] += math.Abs(w)
			}
		}
	}
	for i := 0; i < n; i++ {
		flat = append(flat, i*n+i)
		vals = append(vals, rowAbs[i]+1+rng.Float64())
	}
	return flat, vals
}

func assembleBoth(n int, flat []int, vals []float64) (*Real, *SparseReal, []int32) {
	d := NewReal(n)
	pat, slots := NewPatternFromFlat(n, flat)
	s := NewSparseReal(pat)
	for p, idx := range flat {
		d.V[idx] += vals[p]
		s.V[slots[p]] += vals[p]
	}
	return d, s, slots
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		scale := math.Max(math.Max(math.Abs(a[i]), math.Abs(b[i])), 1e-30)
		if d := math.Abs(a[i]-b[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

func TestSparseRealVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 17, 40, 120} {
		for _, density := range []float64{0.02, 0.1, 0.5} {
			flat, vals := randomSystem(n, density, rng)
			d, s, _ := assembleBoth(n, flat, vals)

			var dlu RealLU
			if err := d.Factor(&dlu); err != nil {
				t.Fatalf("n=%d dense factor: %v", n, err)
			}
			var slu SparseRealLU
			if err := s.Factor(&slu); err != nil {
				t.Fatalf("n=%d sparse factor: %v", n, err)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.Float64()*2 - 1
			}
			xd := make([]float64, n)
			xs := make([]float64, n)
			if err := dlu.SolveFactored(b, xd); err != nil {
				t.Fatalf("dense solve: %v", err)
			}
			if err := slu.SolveFactored(b, xs); err != nil {
				t.Fatalf("sparse solve: %v", err)
			}
			if d := maxRelDiff(xd, xs); d > 1e-9 {
				t.Fatalf("n=%d density=%g: sparse and dense disagree by %g", n, density, d)
			}
		}
	}
}

func TestSparseComplexVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 60
	flat, vals := randomSystem(n, 0.08, rng)
	d := NewComplex(n)
	pat, slots := NewPatternFromFlat(n, flat)
	s := NewSparseComplex(pat)
	for p, idx := range flat {
		// Give every entry an imaginary part too (an MNA G + jωB stamp).
		v := complex(vals[p], 0.3*vals[p])
		d.V[idx] += v
		s.V[slots[p]] += v
	}
	var dlu ComplexLU
	if err := d.Factor(&dlu); err != nil {
		t.Fatalf("dense factor: %v", err)
	}
	var slu SparseComplexLU
	if err := s.Factor(&slu); err != nil {
		t.Fatalf("sparse factor: %v", err)
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	xd := make([]complex128, n)
	xs := make([]complex128, n)
	if err := dlu.SolveFactored(b, xd); err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	if err := slu.SolveFactored(b, xs); err != nil {
		t.Fatalf("sparse solve: %v", err)
	}
	for i := range xd {
		scale := math.Max(math.Max(absScalar(xd[i]), absScalar(xs[i])), 1e-30)
		if absScalar(xd[i]-xs[i])/scale > 1e-9 {
			t.Fatalf("component %d: dense %v sparse %v", i, xd[i], xs[i])
		}
	}
}

// TestSparseRefactorReuse drives the numeric-replay path: a second
// Factor on the same pattern must keep the symbolic structure (no
// regrowth of the factor arrays) and still match the dense answer for
// the new values.
func TestSparseRefactorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 80
	flat, vals := randomSystem(n, 0.06, rng)
	_, s, slots := assembleBoth(n, flat, vals)

	var slu SparseRealLU
	if err := s.Factor(&slu); err != nil {
		t.Fatalf("first factor: %v", err)
	}
	lnz0, unz0 := slu.FactorNnz()

	// New values on the same pattern, as a frequency sweep would produce.
	for sweep := 0; sweep < 5; sweep++ {
		d2 := NewReal(n)
		s.Zero()
		for p, idx := range flat {
			v := vals[p] * (1 + 0.5*rng.Float64())
			d2.V[idx] += v
			s.V[slots[p]] += v
		}
		if err := s.Factor(&slu); err != nil {
			t.Fatalf("refactor %d: %v", sweep, err)
		}
		if lnz, unz := slu.FactorNnz(); lnz != lnz0 || unz != unz0 {
			t.Fatalf("refactor %d changed structure: L %d->%d, U %d->%d", sweep, lnz0, lnz, unz0, unz)
		}
		var dlu RealLU
		if err := d2.Factor(&dlu); err != nil {
			t.Fatalf("dense factor: %v", err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		xd := make([]float64, n)
		xs := make([]float64, n)
		if err := dlu.SolveFactored(b, xd); err != nil {
			t.Fatal(err)
		}
		if err := slu.SolveFactored(b, xs); err != nil {
			t.Fatal(err)
		}
		if diff := maxRelDiff(xd, xs); diff > 1e-9 {
			t.Fatalf("refactor %d disagrees with dense by %g", sweep, diff)
		}
	}
}

// TestSparseRepivotFallback decays the value under a retained pivot to
// zero (keeping the system nonsingular through its off-diagonals) and
// checks that Factor transparently re-pivots instead of failing.
func TestSparseRepivotFallback(t *testing.T) {
	// 2×2 with dominant diagonal first: pivots land on the diagonal.
	flat := []int{0, 1, 2, 3} // cells (0,0) (0,1) (1,0) (1,1)
	pat, slots := NewPatternFromFlat(2, flat)
	s := NewSparseReal(pat)
	set := func(v ...float64) {
		s.Zero()
		for p := range flat {
			s.V[slots[p]] = v[p]
		}
	}
	set(4, 1, 1, 4)
	var slu SparseRealLU
	if err := s.Factor(&slu); err != nil {
		t.Fatalf("initial factor: %v", err)
	}
	if err := s.Factor(&slu); err != nil { // replay path, same values
		t.Fatalf("refactor: %v", err)
	}
	// Zero the (0,0) pivot; matrix [[0,1],[1,4]] is still nonsingular but
	// the retained diagonal pivot order cannot factor it.
	set(0, 1, 1, 4)
	if err := s.Factor(&slu); err != nil {
		t.Fatalf("factor after pivot decay: %v", err)
	}
	b := []float64{1, 0}
	x := make([]float64, 2)
	if err := slu.SolveFactored(b, x); err != nil {
		t.Fatal(err)
	}
	// [[0,1],[1,4]] x = [1,0] → x = [-4, 1].
	if math.Abs(x[0]+4) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("wrong solution after re-pivot: %v", x)
	}
}

// TestSparseSingularParity checks that the sparse backend reports the
// same typed ErrSingular as the dense one on structurally and
// numerically singular systems.
func TestSparseSingularParity(t *testing.T) {
	cases := []struct {
		name string
		n    int
		flat []int
		vals []float64
	}{
		{"duplicate-rows", 3,
			[]int{0, 1, 3, 4, 6, 7, 8},
			[]float64{1, 2, 1, 2, 1, 1, 1}}, // rows 0 and 1 identical
		{"zero-column", 2, []int{0, 2}, []float64{1, 1}}, // column 1 empty
		{"zero-matrix", 2, []int{0, 3}, []float64{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, s, _ := assembleBoth(tc.n, tc.flat, tc.vals)
			var dlu RealLU
			derr := d.Factor(&dlu)
			var slu SparseRealLU
			serr := s.Factor(&slu)
			if !errors.Is(derr, ErrSingular) {
				t.Fatalf("dense: want ErrSingular, got %v", derr)
			}
			if !errors.Is(serr, ErrSingular) {
				t.Fatalf("sparse: want ErrSingular, got %v", serr)
			}
		})
	}
}

func TestSparseSolveAlias(t *testing.T) {
	flat := []int{0, 1, 2, 3}
	pat, slots := NewPatternFromFlat(2, flat)
	s := NewSparseReal(pat)
	for p, v := range []float64{3, 1, 1, 3} {
		s.V[slots[p]] = v
	}
	var slu SparseRealLU
	if err := s.Factor(&slu); err != nil {
		t.Fatal(err)
	}
	b := []float64{4, 4}
	if err := slu.SolveFactored(b, b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-1) > 1e-12 {
		t.Fatalf("aliased solve wrong: %v", b)
	}
}

func TestPatternDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	flat, _ := randomSystem(50, 0.1, rng)
	p1, s1 := NewPatternFromFlat(50, flat)
	p2, s2 := NewPatternFromFlat(50, flat)
	if p1.Nnz() != p2.Nnz() {
		t.Fatalf("nnz differs: %d vs %d", p1.Nnz(), p2.Nnz())
	}
	for i := range p1.q {
		if p1.q[i] != p2.q[i] {
			t.Fatalf("elimination order not deterministic at %d: %d vs %d", i, p1.q[i], p2.q[i])
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("slots not deterministic at %d", i)
		}
	}
}

func TestChooseSparse(t *testing.T) {
	cases := []struct {
		mode SolverMode
		n    int
		nnz  int
		want bool
	}{
		{ModeDense, 100000, 100, false},           // forced dense
		{ModeSparse, 2, 4, true},                  // forced sparse
		{ModeAuto, SparseAutoMinN - 1, 10, false}, // below the size floor
		{ModeAuto, 256, 256 * 8, true},            // large and sparse
		{ModeAuto, 256, 256 * 256, false},         // large but dense
		{ModeAuto, 1024, 1024 * 10, true},
	}
	for _, tc := range cases {
		if got := ChooseSparse(tc.mode, tc.n, tc.nnz); got != tc.want {
			t.Errorf("ChooseSparse(%v, %d, %d) = %v, want %v", tc.mode, tc.n, tc.nnz, got, tc.want)
		}
	}
}

func TestParseSolverMode(t *testing.T) {
	for in, want := range map[string]SolverMode{
		"": ModeAuto, "auto": ModeAuto, "dense": ModeDense, "sparse": ModeSparse,
	} {
		got, err := ParseSolverMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSolverMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSolverMode("qr"); err == nil {
		t.Error("ParseSolverMode(qr) should fail")
	}
	if ModeAuto.String() != "auto" || ModeDense.String() != "dense" || ModeSparse.String() != "sparse" {
		t.Error("SolverMode.String mismatch with flag spellings")
	}
}

func TestDefaultSolverRoundTrip(t *testing.T) {
	prev := SetDefaultSolver(ModeSparse)
	defer SetDefaultSolver(prev)
	if DefaultSolver() != ModeSparse {
		t.Fatal("SetDefaultSolver did not take")
	}
}

// FuzzSparseFactor cross-checks the sparse backend against the dense
// reference on fuzzer-chosen sparsity patterns and values, including a
// refactorization with perturbed values on the retained symbolic
// analysis.
func FuzzSparseFactor(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(10))
	f.Add(int64(7), uint8(3), uint8(50))
	f.Add(int64(42), uint8(120), uint8(2))
	f.Add(int64(-9), uint8(64), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, densRaw uint8) {
		n := 1 + int(nRaw)%64
		density := 0.01 + float64(densRaw%100)/100
		rng := rand.New(rand.NewSource(seed))
		flat, vals := randomSystem(n, density, rng)
		d, s, slots := assembleBoth(n, flat, vals)

		var dlu RealLU
		derr := d.Factor(&dlu)
		var slu SparseRealLU
		serr := s.Factor(&slu)
		if derr != nil || serr != nil {
			// Diagonally dominant systems must factor in both backends.
			t.Fatalf("factor failed: dense %v, sparse %v", derr, serr)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		xd := make([]float64, n)
		xs := make([]float64, n)
		if err := dlu.SolveFactored(b, xd); err != nil {
			t.Fatal(err)
		}
		if err := slu.SolveFactored(b, xs); err != nil {
			t.Fatal(err)
		}
		if diff := maxRelDiff(xd, xs); diff > 1e-8 {
			t.Fatalf("n=%d density=%.2f: backends disagree by %g", n, density, diff)
		}

		// Refactor with perturbed values on the same pattern.
		d2 := NewReal(n)
		s.Zero()
		for p, idx := range flat {
			v := vals[p] * (1 + 0.25*rng.Float64())
			d2.V[idx] += v
			s.V[slots[p]] += v
		}
		var dlu2 RealLU
		if err := d2.Factor(&dlu2); err != nil {
			t.Fatal(err)
		}
		if err := s.Factor(&slu); err != nil {
			t.Fatalf("refactor: %v", err)
		}
		if err := dlu2.SolveFactored(b, xd); err != nil {
			t.Fatal(err)
		}
		if err := slu.SolveFactored(b, xs); err != nil {
			t.Fatal(err)
		}
		if diff := maxRelDiff(xd, xs); diff > 1e-8 {
			t.Fatalf("n=%d density=%.2f: refactor disagrees by %g", n, density, diff)
		}
	})
}
