package linalg

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFactor feeds arbitrary byte-derived matrices through the
// factor/resolve cycle: whatever the input — NaN, Inf, zero rows, wild
// scales — Factor must either return an error or produce a factorization
// that resolves without panicking.
func FuzzFactor(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(1e300)))
	f.Add(binary.LittleEndian.AppendUint64(
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())),
		math.Float64bits(math.Inf(1))))
	seed := make([]byte, 9*8)
	for i := 0; i < 9; i++ {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(float64(i)-4.5))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		vals := len(data) / 8
		n := int(math.Sqrt(float64(vals)))
		if n < 1 {
			return
		}
		if n > 16 {
			n = 16
		}
		m := NewReal(n)
		for i := 0; i < n*n; i++ {
			m.V[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		var lu RealLU
		if err := m.Factor(&lu); err != nil {
			return
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i + 1)
		}
		x := make([]float64, n)
		if err := lu.SolveFactored(b, x); err != nil {
			t.Fatalf("factored matrix failed to resolve: %v", err)
		}
	})
}
