package linalg

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestErrSingularTyped(t *testing.T) {
	t.Parallel()
	m := NewReal(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	_, err := m.Solve([]float64{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("real: error %v is not ErrSingular", err)
	}
	if err == nil || !strings.Contains(err.Error(), "column") {
		t.Errorf("real: error %v lacks the column context", err)
	}

	c := NewComplex(2)
	c.Set(0, 0, complex(1, 1))
	c.Set(0, 1, complex(2, 2))
	c.Set(1, 0, complex(3, 3))
	c.Set(1, 1, complex(6, 6))
	if _, err := c.Solve([]complex128{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("complex: error %v is not ErrSingular", err)
	}
}

// TestScaleAwareSingularity: a rank-deficient matrix with large entries
// leaves only a roundoff-sized pivot after elimination. An absolute
// threshold (the old 1e-30) is blind to it; the relative check catches it.
func TestScaleAwareSingularity(t *testing.T) {
	t.Parallel()
	// Row 2 = Row 1 / 3, up to representation error: elimination leaves a
	// pivot around 1e-9·scale, far below any meaningful value but far
	// above 1e-30.
	m := NewReal(2)
	m.Set(0, 0, 3e8)
	m.Set(0, 1, 1e8)
	m.Set(1, 0, 1e8)
	m.Set(1, 1, 1e8/3)
	_, err := m.Solve([]float64{1, 1})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("near-singular large-scale matrix not detected: %v", err)
	}
}

// TestTinyWellScaledColumnNotSingular: a column whose honest magnitude is
// tiny (a Gmin-only node at 1e-12) must factor fine — the check is
// relative to the column's own scale, not the matrix's.
func TestTinyWellScaledColumnNotSingular(t *testing.T) {
	t.Parallel()
	m := NewReal(2)
	m.Set(0, 0, 1e-12)
	m.Set(1, 1, 1e7)
	x, err := m.Solve([]float64{1e-12, 1e7})
	if err != nil {
		t.Fatalf("well-scaled tiny column rejected: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Errorf("x = %v, want [1 1]", x)
	}
}

// TestFactorResolveReuse: one factorization serves many right-hand sides,
// each solution checked against the original matrix.
func TestFactorResolveReuse(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	n := 12
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	m := &Real{N: n, V: append([]float64(nil), a...)}
	var f RealLU
	if err := m.Factor(&f); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	x := make([]float64, n)
	for trial := 0; trial < 10; trial++ {
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		if err := f.SolveFactored(b, x); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: residual row %d = %v", trial, i, sum-b[i])
			}
		}
	}
}

// TestSolveFactoredMatchesSolve: the split path and the one-shot wrapper
// must produce bitwise-identical solutions (Solve is implemented on the
// split, and the figures depend on that staying true).
func TestSolveFactoredMatchesSolve(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		m1 := &Real{N: n, V: append([]float64(nil), a...)}
		want, err := m1.Solve(b)
		if err != nil {
			continue
		}
		m2 := &Real{N: n, V: append([]float64(nil), a...)}
		var f RealLU
		if err := m2.Factor(&f); err != nil {
			t.Fatalf("trial %d: Solve ok but Factor failed: %v", trial, err)
		}
		x := make([]float64, n)
		if err := f.SolveFactored(b, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if x[i] != want[i] {
				t.Fatalf("trial %d: x[%d] = %v != %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestSolveFactoredDimensionMismatch(t *testing.T) {
	t.Parallel()
	m := NewReal(2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	var f RealLU
	if err := m.Factor(&f); err != nil {
		t.Fatal(err)
	}
	if err := f.SolveFactored([]float64{1}, []float64{0, 0}); err == nil {
		t.Error("short b should error")
	}
	if err := f.SolveFactored([]float64{1, 2}, []float64{0}); err == nil {
		t.Error("short x should error")
	}
}
