package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRealKnownSystem(t *testing.T) {
	t.Parallel()
	// [2 1; 1 3] x = [5; 10] → x = [1; 3].
	m := NewReal(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := m.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestRealRandomResidual(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		m := &Real{N: n, V: append([]float64(nil), a...)}
		x, err := m.Solve(b)
		if err != nil {
			continue // singular random draw
		}
		// Residual against the original matrix.
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: residual row %d = %v", trial, i, sum-b[i])
			}
		}
	}
}

func TestRealSingular(t *testing.T) {
	t.Parallel()
	m := NewReal(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Solve([]float64{1, 2}); err == nil {
		t.Error("singular matrix should error")
	}
	if _, err := NewReal(2).Solve([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestRealPivoting(t *testing.T) {
	t.Parallel()
	// Zero pivot in (0,0) requires a row swap.
	m := NewReal(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := m.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestComplexKnownSystem(t *testing.T) {
	t.Parallel()
	// (1+i)·x = 2 → x = 1-i.
	m := NewComplex(1)
	m.Set(0, 0, complex(1, 1))
	x, err := m.Solve([]complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(1, -1)) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestComplexRandomResidual(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		a := make([]complex128, n*n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		m := &Complex{N: n, V: append([]complex128(nil), a...)}
		x, err := m.Solve(b)
		if err != nil {
			continue
		}
		for i := 0; i < n; i++ {
			var sum complex128
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * x[j]
			}
			if cmplx.Abs(sum-b[i]) > 1e-8*(1+cmplx.Abs(b[i])) {
				t.Fatalf("trial %d: residual row %d = %v", trial, i, sum-b[i])
			}
		}
	}
}

func TestSolveDoesNotModifyRHS(t *testing.T) {
	t.Parallel()
	f := func(a, b, c, d, r1, r2 float64) bool {
		bound := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 100)
		}
		m := NewReal(2)
		m.Set(0, 0, bound(a)+10) // diagonally dominant, non-singular
		m.Set(0, 1, bound(b))
		m.Set(1, 0, bound(c))
		m.Set(1, 1, bound(d)+200)
		rhs := []float64{bound(r1), bound(r2)}
		orig := append([]float64(nil), rhs...)
		if _, err := m.Solve(rhs); err != nil {
			return true
		}
		return rhs[0] == orig[0] && rhs[1] == orig[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
