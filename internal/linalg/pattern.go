package linalg

import "sort"

// Pattern is an immutable compressed-sparse-column sparsity pattern
// shared by every matrix and factorization of one stamp plan. The MNA
// and transient solvers compile their netlists into fixed stamp
// positions, so the pattern — and the fill-reducing column ordering
// computed from it — is built once per compiled plan and reused across
// every frequency point, timestep and sweep worker; only the values
// array of each SparseReal/SparseComplex changes.
type Pattern struct {
	N      int
	ColPtr []int32 // len N+1
	RowIdx []int32 // len nnz, ascending within each column

	// q is the fill-reducing column elimination order (q[k] = original
	// column eliminated at step k), from a minimum-degree pass over the
	// symmetrized pattern.
	q []int32

	// estFlops is the projected numeric-factorization work under q (see
	// minDegreeOrder): the minimum-degree pass simulates the elimination
	// anyway, so the Schur-update sizes it touches come for free. The
	// fill-aware auto heuristic compares this against the dense cost.
	estFlops float64
}

// Nnz returns the structural nonzero count.
func (p *Pattern) Nnz() int { return len(p.RowIdx) }

// EstFactorFlops returns the projected sparse factorization work for
// this pattern under its fill-reducing ordering — a structural estimate
// (Σ degree² over the simulated elimination, dense-tail cubed), not a
// flop count of any particular numeric run.
func (p *Pattern) EstFactorFlops() float64 { return p.estFlops }

// NewPatternFromFlat builds the pattern of an n×n system from flat
// row-major cell indices (i*n + j), duplicates allowed — exactly the
// index stream a compiled stamp plan produces. The returned slots map
// each input entry to its value-array position, so assembly is
// v[slots[p]] += value in plan order, preserving the dense path's
// per-cell accumulation order bit for bit.
func NewPatternFromFlat(n int, flat []int) (*Pattern, []int32) {
	// Unique cells in column-major order: key = col*n + row.
	keys := make([]int64, len(flat))
	for p, idx := range flat {
		i, j := idx/n, idx%n
		keys[p] = int64(j)*int64(n) + int64(i)
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	uniq := sorted[:0]
	for _, k := range sorted {
		if len(uniq) == 0 || uniq[len(uniq)-1] != k {
			uniq = append(uniq, k)
		}
	}
	pat := &Pattern{
		N:      n,
		ColPtr: make([]int32, n+1),
		RowIdx: make([]int32, len(uniq)),
	}
	slotOf := make(map[int64]int32, len(uniq))
	for s, k := range uniq {
		col := int(k / int64(n))
		pat.ColPtr[col+1]++
		pat.RowIdx[s] = int32(k % int64(n))
		slotOf[k] = int32(s)
	}
	for c := 0; c < n; c++ {
		pat.ColPtr[c+1] += pat.ColPtr[c]
	}
	slots := make([]int32, len(flat))
	for p, k := range keys {
		slots[p] = slotOf[k]
	}
	pat.q, pat.estFlops = minDegreeOrder(pat)
	return pat, slots
}

// mdMaxDegree caps the clique formation of the minimum-degree pass: a
// node whose elimination would touch more neighbours than this is
// deferred to the end (its row is effectively dense and ordering it
// early would fill the whole remainder anyway). This bounds the
// ordering at O(n·d²) for bounded-degree graphs and keeps pathological
// dense rows from blowing the pass up quadratically.
const mdMaxDegree = 48

// minDegreeOrder computes a fill-reducing elimination order by the
// classic minimum-degree heuristic on the symmetrized pattern A+Aᵀ
// (row pivoting during the numeric factorization makes the effective
// pattern unsymmetric, so the symmetric envelope is the right target).
// Ties break on the original index, keeping the order deterministic.
//
// The second return value is the projected factorization work under the
// computed order: each elimination of a vertex with d remaining
// neighbours contributes a d×d Schur update (d² operations), and a
// deferred high-degree tail of m vertices is costed as a dense m³/3
// block. The estimate is structural and deterministic.
func minDegreeOrder(p *Pattern) ([]int32, float64) {
	n := p.N
	adj := make([]map[int32]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int32]struct{}, 8)
	}
	for c := 0; c < n; c++ {
		for s := p.ColPtr[c]; s < p.ColPtr[c+1]; s++ {
			r := p.RowIdx[s]
			if int(r) != c {
				adj[c][r] = struct{}{}
				adj[r][int32(c)] = struct{}{}
			}
		}
	}
	order := make([]int32, 0, n)
	eliminated := make([]bool, n)
	deferred := make([]int32, 0)
	flops := 0.0
	for len(order)+len(deferred) < n {
		best, bestDeg := int32(-1), int(^uint(0)>>1)
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			if d := len(adj[v]); d < bestDeg {
				best, bestDeg = int32(v), d
			}
		}
		if bestDeg > mdMaxDegree {
			// Everything left is high-degree: append in index order.
			for v := 0; v < n; v++ {
				if !eliminated[v] {
					deferred = append(deferred, int32(v))
					eliminated[v] = true
				}
			}
			m := float64(len(deferred))
			flops += m * m * m / 3
			break
		}
		v := best
		eliminated[v] = true
		order = append(order, v)
		// Connect the remaining neighbours into a clique and detach v.
		nbrs := make([]int32, 0, len(adj[v]))
		for w := range adj[v] {
			if !eliminated[w] {
				nbrs = append(nbrs, w)
			}
		}
		flops += float64(len(nbrs)) * float64(len(nbrs))
		for _, w := range nbrs {
			delete(adj[w], v)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				adj[nbrs[i]][nbrs[j]] = struct{}{}
				adj[nbrs[j]][nbrs[i]] = struct{}{}
			}
		}
		adj[v] = nil
	}
	return append(order, deferred...), flops
}
