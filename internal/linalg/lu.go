// Package linalg provides the dense LU solvers shared by the circuit
// solvers (real transient, complex AC) and the electrostatic panel method.
//
// The factorization and the triangular solves are split (Factor /
// SolveFactored) so callers whose matrix changes rarely — the transient
// solver between commutations, any fixed-topology resolve — pay the
// O(n³) elimination once and the O(n²) resolve per right-hand side. The
// one-shot Solve convenience wrappers remain and are implemented on top
// of the split, so both paths share one elimination kernel.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/engine"
)

// ErrSingular reports a numerically singular matrix: at some elimination
// column every remaining pivot candidate was negligible relative to the
// column's original magnitude. Callers wrap it with their own context
// (the offending frequency or timestep) and match with errors.Is.
var ErrSingular = errors.New("singular matrix")

// pivotTol is the relative singularity threshold: a pivot is rejected
// when it is smaller than pivotTol times the largest original magnitude
// of its column. Scaling the check per column keeps it meaningful for
// the badly scaled MNA systems (Gmin-only columns at 1e-12 next to
// switch conductances at 1e2) where any absolute threshold is either
// blind or trigger-happy.
const pivotTol = 1e-13

// RealLU is the LU factorization of a Real matrix with partial pivoting.
// Factor eliminates in place, so the factors borrow the matrix's backing
// slice: the matrix must not be reassembled while the factorization is
// in use. The pivot and column-scale scratch is owned by the RealLU and
// reused across Factor calls; after the first use the factor/resolve
// cycle performs no allocations.
type RealLU struct {
	n     int
	lu    []float64
	piv   []int
	scale []float64
}

// Factor performs in-place LU decomposition of m with partial pivoting,
// recording the factors and pivot permutation in f. The matrix contents
// are destroyed (they become the packed L and U factors).
func (m *Real) Factor(f *RealLU) error {
	n := m.N
	f.n = n
	f.lu = m.V
	if cap(f.piv) < n {
		f.piv = make([]int, n)
		f.scale = make([]float64, n)
	}
	f.piv = f.piv[:n]
	f.scale = f.scale[:n]
	engine.CountFactor()
	for j := 0; j < n; j++ {
		f.scale[j] = 0
	}
	for i := 0; i < n; i++ {
		row := m.V[i*n : i*n+n]
		for j, v := range row {
			if a := math.Abs(v); a > f.scale[j] {
				f.scale[j] = a
			}
		}
	}
	for col := 0; col < n; col++ {
		best, bestAbs := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m.At(r, col)); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if bestAbs == 0 || bestAbs < pivotTol*f.scale[col] {
			return fmt.Errorf("linalg: %w at column %d (pivot %g, column scale %g)",
				ErrSingular, col, bestAbs, f.scale[col])
		}
		f.piv[col] = best
		if best != col {
			for j := 0; j < n; j++ {
				m.V[col*n+j], m.V[best*n+j] = m.V[best*n+j], m.V[col*n+j]
			}
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			fac := m.At(r, col) / piv
			m.V[r*n+col] = fac
			if fac == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				m.V[r*n+j] -= fac * m.V[col*n+j]
			}
		}
	}
	return nil
}

// SolveFactored solves A·x = b against the retained factorization. b is
// not modified (unless x aliases it); x receives the solution. The
// resolve path allocates nothing.
func (f *RealLU) SolveFactored(b, x []float64) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: dimension mismatch %d/%d vs %d", len(b), len(x), n)
	}
	engine.CountResolve()
	copy(x, b)
	// The stored multipliers are post-permutation (row swaps during the
	// elimination moved them along with their rows), so the whole pivot
	// permutation must be applied to x before forward substitution.
	for col := 0; col < n; col++ {
		if p := f.piv[col]; p != col {
			x[col], x[p] = x[p], x[col]
		}
	}
	for col := 0; col < n; col++ {
		for r := col + 1; r < n; r++ {
			if fac := f.lu[r*n+col]; fac != 0 {
				x[r] -= fac * x[col]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= f.lu[i*n+j] * x[j]
		}
		x[i] = sum / f.lu[i*n+i]
	}
	return nil
}

// Real is a dense real matrix with a flat backing slice.
type Real struct {
	N int
	V []float64
}

// NewReal allocates an n×n zero matrix.
func NewReal(n int) *Real { return &Real{N: n, V: make([]float64, n*n)} }

// At returns element (i, j).
func (m *Real) At(i, j int) float64 { return m.V[i*m.N+j] }

// Set assigns element (i, j).
func (m *Real) Set(i, j int, x float64) { m.V[i*m.N+j] = x }

// Add accumulates into element (i, j).
func (m *Real) Add(i, j int, x float64) { m.V[i*m.N+j] += x }

// Solve performs in-place LU decomposition with partial pivoting and solves
// m·x = b. The matrix contents are destroyed; b is not modified.
func (m *Real) Solve(b []float64) ([]float64, error) {
	if len(b) != m.N {
		return nil, fmt.Errorf("linalg: dimension mismatch %d vs %d", len(b), m.N)
	}
	var f RealLU
	if err := m.Factor(&f); err != nil {
		return nil, err
	}
	x := make([]float64, m.N)
	if err := f.SolveFactored(b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// ComplexLU is the LU factorization of a Complex matrix with partial
// pivoting; see RealLU for the storage-borrowing and scratch-reuse
// contract.
type ComplexLU struct {
	n     int
	lu    []complex128
	piv   []int
	scale []float64
}

// Factor performs in-place LU decomposition of m with partial pivoting,
// recording the factors and pivot permutation in f. The matrix contents
// are destroyed (they become the packed L and U factors).
func (m *Complex) Factor(f *ComplexLU) error {
	n := m.N
	f.n = n
	f.lu = m.V
	if cap(f.piv) < n {
		f.piv = make([]int, n)
		f.scale = make([]float64, n)
	}
	f.piv = f.piv[:n]
	f.scale = f.scale[:n]
	engine.CountFactor()
	for j := 0; j < n; j++ {
		f.scale[j] = 0
	}
	// The scale is only a magnitude reference for the relative pivot
	// threshold: the 1-norm |re|+|im| (within √2 of the modulus) avoids a
	// hypot per matrix entry on every factorization.
	for i := 0; i < n; i++ {
		row := m.V[i*n : i*n+n]
		for j, v := range row {
			if a := math.Abs(real(v)) + math.Abs(imag(v)); a > f.scale[j] {
				f.scale[j] = a
			}
		}
	}
	for col := 0; col < n; col++ {
		best, bestAbs := col, cmplx.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := cmplx.Abs(m.At(r, col)); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if bestAbs == 0 || bestAbs < pivotTol*f.scale[col] {
			return fmt.Errorf("linalg: %w at column %d (pivot %g, column scale %g)",
				ErrSingular, col, bestAbs, f.scale[col])
		}
		f.piv[col] = best
		if best != col {
			for j := 0; j < n; j++ {
				m.V[col*n+j], m.V[best*n+j] = m.V[best*n+j], m.V[col*n+j]
			}
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			fac := m.At(r, col) / piv
			m.V[r*n+col] = fac
			if fac == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				m.V[r*n+j] -= fac * m.V[col*n+j]
			}
		}
	}
	return nil
}

// SolveFactored solves A·x = b against the retained factorization. b is
// not modified (unless x aliases it); x receives the solution. The
// resolve path allocates nothing.
func (f *ComplexLU) SolveFactored(b, x []complex128) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: dimension mismatch %d/%d vs %d", len(b), len(x), n)
	}
	engine.CountResolve()
	copy(x, b)
	// See RealLU.SolveFactored: permute fully before substituting.
	for col := 0; col < n; col++ {
		if p := f.piv[col]; p != col {
			x[col], x[p] = x[p], x[col]
		}
	}
	for col := 0; col < n; col++ {
		for r := col + 1; r < n; r++ {
			if fac := f.lu[r*n+col]; fac != 0 {
				x[r] -= fac * x[col]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= f.lu[i*n+j] * x[j]
		}
		x[i] = sum / f.lu[i*n+i]
	}
	return nil
}

// Complex is a dense complex matrix with a flat backing slice.
type Complex struct {
	N int
	V []complex128
}

// NewComplex allocates an n×n zero matrix.
func NewComplex(n int) *Complex { return &Complex{N: n, V: make([]complex128, n*n)} }

// At returns element (i, j).
func (m *Complex) At(i, j int) complex128 { return m.V[i*m.N+j] }

// Set assigns element (i, j).
func (m *Complex) Set(i, j int, x complex128) { m.V[i*m.N+j] = x }

// Add accumulates into element (i, j).
func (m *Complex) Add(i, j int, x complex128) { m.V[i*m.N+j] += x }

// Solve performs in-place LU decomposition with partial pivoting and solves
// m·x = b. The matrix contents are destroyed; b is not modified.
func (m *Complex) Solve(b []complex128) ([]complex128, error) {
	if len(b) != m.N {
		return nil, fmt.Errorf("linalg: dimension mismatch %d vs %d", len(b), m.N)
	}
	var f ComplexLU
	if err := m.Factor(&f); err != nil {
		return nil, err
	}
	x := make([]complex128, m.N)
	if err := f.SolveFactored(b, x); err != nil {
		return nil, err
	}
	return x, nil
}
