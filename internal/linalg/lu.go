// Package linalg provides the dense LU solvers shared by the circuit
// solvers (real transient, complex AC) and the electrostatic panel method.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Real is a dense real matrix with a flat backing slice.
type Real struct {
	N int
	V []float64
}

// NewReal allocates an n×n zero matrix.
func NewReal(n int) *Real { return &Real{N: n, V: make([]float64, n*n)} }

// At returns element (i, j).
func (m *Real) At(i, j int) float64 { return m.V[i*m.N+j] }

// Set assigns element (i, j).
func (m *Real) Set(i, j int, x float64) { m.V[i*m.N+j] = x }

// Add accumulates into element (i, j).
func (m *Real) Add(i, j int, x float64) { m.V[i*m.N+j] += x }

// Solve performs in-place LU decomposition with partial pivoting and solves
// m·x = b. The matrix contents are destroyed; b is not modified.
func (m *Real) Solve(b []float64) ([]float64, error) {
	n := m.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: dimension mismatch %d vs %d", len(b), n)
	}
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		best, bestAbs := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m.At(r, col)); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if bestAbs < 1e-30 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if best != col {
			for j := 0; j < n; j++ {
				m.V[col*n+j], m.V[best*n+j] = m.V[best*n+j], m.V[col*n+j]
			}
			x[col], x[best] = x[best], x[col]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			m.V[r*n+col] = 0
			for j := col + 1; j < n; j++ {
				m.V[r*n+j] -= f * m.V[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= m.At(i, j) * x[j]
		}
		x[i] = sum / m.At(i, i)
	}
	return x, nil
}

// Complex is a dense complex matrix with a flat backing slice.
type Complex struct {
	N int
	V []complex128
}

// NewComplex allocates an n×n zero matrix.
func NewComplex(n int) *Complex { return &Complex{N: n, V: make([]complex128, n*n)} }

// At returns element (i, j).
func (m *Complex) At(i, j int) complex128 { return m.V[i*m.N+j] }

// Set assigns element (i, j).
func (m *Complex) Set(i, j int, x complex128) { m.V[i*m.N+j] = x }

// Add accumulates into element (i, j).
func (m *Complex) Add(i, j int, x complex128) { m.V[i*m.N+j] += x }

// Solve performs in-place LU decomposition with partial pivoting and solves
// m·x = b. The matrix contents are destroyed; b is not modified.
func (m *Complex) Solve(b []complex128) ([]complex128, error) {
	n := m.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: dimension mismatch %d vs %d", len(b), n)
	}
	x := make([]complex128, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		best, bestAbs := col, cmplx.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := cmplx.Abs(m.At(r, col)); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if bestAbs < 1e-30 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if best != col {
			for j := 0; j < n; j++ {
				m.V[col*n+j], m.V[best*n+j] = m.V[best*n+j], m.V[col*n+j]
			}
			x[col], x[best] = x[best], x[col]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			m.V[r*n+col] = 0
			for j := col + 1; j < n; j++ {
				m.V[r*n+j] -= f * m.V[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= m.At(i, j) * x[j]
		}
		x[i] = sum / m.At(i, i)
	}
	return x, nil
}
