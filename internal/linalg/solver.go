package linalg

import (
	"fmt"
	"sync/atomic"
)

// RealFactorizer is the retained-factorization contract shared by the
// dense RealLU and the sparse SparseRealLU: after a Factor call on the
// owning matrix, SolveFactored resolves right-hand sides without
// allocating. Holding the factorization by interface lets the circuit
// solvers pick a backend per system size without duplicating their
// assemble/factor/resolve plumbing.
type RealFactorizer interface {
	SolveFactored(b, x []float64) error
}

// ComplexFactorizer is the complex counterpart of RealFactorizer,
// implemented by ComplexLU and SparseComplexLU.
type ComplexFactorizer interface {
	SolveFactored(b, x []complex128) error
}

var (
	_ RealFactorizer    = (*RealLU)(nil)
	_ ComplexFactorizer = (*ComplexLU)(nil)
	_ RealFactorizer    = (*SparseRealLU)(nil)
	_ ComplexFactorizer = (*SparseComplexLU)(nil)
)

// SolverMode selects the factorization backend for an MNA-style system.
type SolverMode int

const (
	// ModeAuto picks dense or sparse per system from ChooseSparse's
	// size/density heuristic. It is the zero value and the default.
	ModeAuto SolverMode = iota
	// ModeDense forces the flat in-place LU regardless of size.
	ModeDense
	// ModeSparse forces the CSC LU regardless of size.
	ModeSparse
)

// String implements fmt.Stringer with the CLI flag spelling.
func (m SolverMode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// ParseSolverMode parses the -solver flag values "auto", "dense", "sparse".
func ParseSolverMode(s string) (SolverMode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "dense":
		return ModeDense, nil
	case "sparse":
		return ModeSparse, nil
	}
	return ModeAuto, fmt.Errorf("linalg: unknown solver %q (want auto, dense or sparse)", s)
}

// defaultMode is the process-wide solver selection, set by the CLIs'
// shared -solver flag and read by solvers whose callers did not pick a
// mode explicitly. Atomic because sweeps read it from pool workers.
var defaultMode atomic.Int32

// SetDefaultSolver installs the process-wide solver mode and returns the
// previous one.
func SetDefaultSolver(m SolverMode) SolverMode {
	return SolverMode(defaultMode.Swap(int32(m)))
}

// DefaultSolver returns the process-wide solver mode.
func DefaultSolver() SolverMode { return SolverMode(defaultMode.Load()) }

// Auto-selection heuristic. Dense LU is O(n³) but with a tiny constant
// and perfect locality; the sparse left-looking LU wins once the system
// is both large enough to amortise its symbolic machinery and sparse
// enough that fill-in stays bounded. The thresholds bracket the measured
// crossover on MNA ladder systems (BENCH_pr8.json: sparse overtakes
// dense between n≈64 and n≈128 at MNA densities); they are deliberately
// conservative so every small fixture keeps the historic dense path and
// its bit-exact results.
const (
	// SparseAutoMinN is the smallest dimension ModeAuto considers sparse.
	SparseAutoMinN = 128
	// sparseAutoMaxDensity is the largest nnz/n² fraction ModeAuto still
	// treats as sparse; denser systems fill in during elimination and the
	// flat dense kernel wins on locality.
	sparseAutoMaxDensity = 0.125
)

// ChooseSparse reports whether the given mode selects the sparse backend
// for an n×n system with nnz structural nonzeros. This is the cheap
// pre-pattern gate; callers that have built the Pattern refine the auto
// decision with SparseWorthwhile, which sees the projected fill.
func ChooseSparse(mode SolverMode, n, nnz int) bool {
	switch mode {
	case ModeDense:
		return false
	case ModeSparse:
		return true
	}
	if n < SparseAutoMinN {
		return false
	}
	return float64(nnz) <= sparseAutoMaxDensity*float64(n)*float64(n)
}

// sparseFlopPenalty converts the structural work estimate of
// Pattern.EstFactorFlops into dense-equivalent flops. It is a decision
// boundary, not a per-op cost: the estimate undercounts the sparse
// kernel's true indexed gather/scatter work on fill-heavy patterns, and
// the constant absorbs that bias. Calibrated on two measured MNA
// systems: a 450-stage ladder (n = 1352, est ≈ 1.4e3, sparse 187×
// faster than dense — stays sparse for any penalty below ≈ 1e6) and a
// 2-D K-coupling mesh mirroring the 10k-segment board's predict system
// (n = 1787, est ≈ 1.7e7, dense cost 2n³/3 ≈ 3.8e9, sparse measured
// 2.1× slower — flips to dense only above ≈ 222, with the wall-clock
// ratio implying ≈ 475). 512 sits past the implied crossover with
// margin while leaving ladders and lightly-filling grids sparse.
const sparseFlopPenalty = 512.0

// SparseWorthwhile reports whether the projected sparse factorization
// work (Pattern.EstFactorFlops) beats the dense O(n³) cost for an n×n
// system. This is the fill-aware half of the auto heuristic: patterns
// whose nnz passes ChooseSparse can still fill in badly under
// elimination (2-D coupling meshes), and this comparison catches them.
func SparseWorthwhile(n int, estFlops float64) bool {
	fn := float64(n)
	return estFlops*sparseFlopPenalty < 2.0/3.0*fn*fn*fn
}
