// Quickstart: the smallest end-to-end tour of the library.
//
// Two filter capacitors sit behind a LISN. We predict the conducted
// emissions with and without their magnetic coupling, derive the placement
// rule that keeps the coupling harmless, and check a good and a bad
// placement against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/components"
	"repro/internal/emi"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/peec"
	"repro/internal/rules"
)

func main() {
	// 1. A component model: 1.5 µF X2 film capacitor. Its ESL comes from
	// the PEEC current-loop model — no datasheet needed.
	cap := components.NewX2Cap("X2-1u5", 1.5e-6)
	fmt.Printf("X2 capacitor ESL from the PEEC loop model: %.1f nH\n\n", cap.EffectiveESL()*1e9)

	// 2. Coupling factor vs distance (the paper's Figure 5).
	a := &components.Instance{Ref: "C1", Model: cap}
	fmt.Println("distance   coupling factor")
	for _, mm := range []float64{20, 30, 40} {
		b := &components.Instance{Ref: "C2", Model: cap, Center: geom.V2(0, mm*1e-3)}
		k := components.CouplingFactor(a, b, peec.DefaultOrder)
		fmt.Printf("  %2.0f mm    %.4f\n", mm, math.Abs(k))
	}

	// 3. A filter circuit behind a CISPR 25 LISN, with the capacitors'
	// parasitic ESLs as coupling sites.
	ckt := &netlist.Circuit{Title: "quickstart filter"}
	ckt.AddV("Vbat", "bat", "0", netlist.Source{DC: 12})
	meas := emi.AddLISN(ckt, "lisn", "bat", "vin")
	ckt.AddC("C1", "vin", "x1", cap.C)
	ckt.AddL("Lc1", "x1", "0", cap.EffectiveESL())
	ckt.AddL("Lf", "vin", "vdd", 22e-6)
	ckt.AddC("C2", "vdd", "x2", cap.C)
	ckt.AddL("Lc2", "x2", "0", cap.EffectiveESL())
	ckt.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 12, Rise: 30e-9, Fall: 30e-9, Width: 2e-6, Period: 5e-6,
	}})
	ckt.AddL("Lloop", "sw", "swl", 40e-9)
	ckt.AddR("Rloop", "swl", "vdd", 0.2)

	predict := func(k float64) *emi.Spectrum {
		c := ckt.Clone()
		if k != 0 {
			c.SetCoupling("Lc1", "Lc2", k)
		}
		s, err := (&emi.Predictor{
			Circuit: c, SourceName: "Vsw", MeasureNode: meas, MaxFreq: 108e6,
		}).Spectrum()
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// A close parallel placement couples the caps with k ≈ 0.016.
	close := &components.Instance{Ref: "C2", Model: cap, Center: geom.V2(0, 0.02)}
	kClose := math.Abs(components.CouplingFactor(a, close, peec.DefaultOrder))
	sNo := predict(0)
	sYes := predict(kClose)
	_, hfNo := sNo.InBand(10e6, 108e6).Max()
	_, hfYes := sYes.InBand(10e6, 108e6).Max()
	fmt.Printf("\nHigh-frequency emissions without coupling: %5.1f dBµV\n", hfNo)
	fmt.Printf("With the k=%.4f of a 20 mm placement:      %5.1f dBµV  (+%.1f dB!)\n",
		kClose, hfYes, hfYes-hfNo)

	// 4. Derive the placement rule: minimum distance for k ≤ 0.01.
	pemd, err := rules.DerivePEMD(cap, cap, rules.DeriveOptions{KMax: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDerived placement rule: PEMD = %.1f mm at parallel axes\n", pemd*1e3)
	fmt.Printf("Rotated by 90°: EMD = %.1f mm — the parts may touch.\n",
		rules.EMD(pemd, math.Pi/2)*1e3)
}
