// Common-mode choke placement study (the paper's Figure 8).
//
// A filter capacitor is moved around a current-compensated choke. The
// two-winding design (single-phase lines) has positions where the winding
// stray fields cancel — preferred placements for adjacent capacitors. The
// three-winding design carries three-phase currents whose rotating stray
// field leaves no decoupled position: at every angle some phase couples.
//
//	go run ./examples/cmchoke
package main

import (
	"fmt"
	"math"

	"repro/internal/components"
	"repro/internal/geom"
	"repro/internal/peec"
)

func main() {
	victim := components.NewX2Cap("X2-1u0", 1e-6)
	cm2 := components.NewCMChoke2("CM2")
	cm3 := components.NewCMChoke3("CM3")
	const d = 0.035 // 35 mm center distance

	fmt.Println("capacitor orbiting the choke at 35 mm, axis pointing at it:")
	fmt.Println("angle   k_eff(2-winding)  k_eff(3-winding)")
	type best struct{ min, max float64 }
	b2 := best{math.Inf(1), 0}
	b3 := best{math.Inf(1), 0}
	var best2Deg int
	for deg := 0; deg < 360; deg += 15 {
		phi := geom.Rad(float64(deg))
		pos := geom.V2(d*math.Cos(phi), d*math.Sin(phi))
		cond := victim.Conductor(phi + math.Pi/2).Translate(pos.Lift(0))
		k2 := cm2.EffectiveCouplingTo(cond, 0, peec.DefaultOrder)
		k3 := cm3.EffectiveCouplingTo(cond, 0, peec.DefaultOrder)
		bar2 := bar(k2, 0.001)
		bar3 := bar(k3, 0.005)
		fmt.Printf("%4d°   %.6f %-10s  %.6f %s\n", deg, k2, bar2, k3, bar3)
		if k2 < b2.min {
			b2.min, best2Deg = k2, deg
		}
		if k2 > b2.max {
			b2.max = k2
		}
		b3.min = math.Min(b3.min, k3)
		b3.max = math.Max(b3.max, k3)
	}
	fmt.Printf("\n2-winding: min/max = %.4f — decoupled position at %d° (place capacitors there)\n",
		b2.min/b2.max, best2Deg)
	fmt.Printf("3-winding: min/max = %.4f — no decoupled position exists\n", b3.min/b3.max)
	fmt.Println("\nThis is why the paper's minimum-distance rules carry preferred")
	fmt.Println("positions for 2-winding chokes but plain distances for 3-winding ones.")
}

// bar renders a tiny ASCII magnitude bar.
func bar(v, full float64) string {
	n := int(v / full * 10)
	if n > 20 {
		n = 20
	}
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}
