// Three-phase inverter common-mode study (second case study).
//
// Three half-bridge legs pump common-mode current through their device-tab
// capacitances; a three-winding current-compensated choke — the component
// whose rotating stray field the paper's Figure 8 discusses — filters the
// motor-cable path. The example shows two orthogonal EMC levers:
//
//   - 120° leg interleave cancels every harmonic not divisible by three,
//
//   - the CM choke attenuates what remains.
//
//     go run ./examples/inverter
package main

import (
	"fmt"
	"log"

	"repro/internal/inverter"
)

func main() {
	variants := []struct {
		name string
		opt  inverter.Options
	}{
		{"synchronized, no choke", inverter.Options{}},
		{"synchronized, with choke", inverter.Options{WithChoke: true}},
		{"interleaved, with choke", inverter.Options{Interleaved: true, WithChoke: true}},
	}
	fmt.Println("common-mode level at the supply LISN, first PWM harmonics [dBµV]:")
	fmt.Printf("%-26s", "")
	for _, k := range []int{1, 2, 3, 5, 7, 9} {
		fmt.Printf("  h%-4d", k)
	}
	fmt.Println()
	for _, v := range variants {
		s, err := inverter.Predict(v.opt, 2e6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s", v.name)
		for _, k := range []int{1, 2, 3, 5, 7, 9} {
			db, err := inverter.HarmonicLevel(s, k)
			if err != nil {
				log.Fatal(err)
			}
			if db <= -150 {
				fmt.Printf("  %5s", "—")
			} else {
				fmt.Printf("  %5.1f", db)
			}
		}
		fmt.Println()
	}
	fmt.Println("\n'—' marks harmonics cancelled below the numeric floor: balanced")
	fmt.Println("120° interleave nulls all non-triplen harmonics; even harmonics")
	fmt.Println("are already absent at 50 % duty. The choke carries the rest.")
}
