// Time-domain EMI measurement chain: the paper notes the circuit may be
// simulated "either in time or frequency domain" — this example runs both
// and lets a CISPR-16-style measuring receiver (peak / quasi-peak /
// average detectors) read the simulated waveform, the virtual version of
// putting a converter on the bench.
//
//	go run ./examples/timedomain
package main

import (
	"fmt"
	"log"

	"repro/internal/emi"
	"repro/internal/netlist"
	"repro/internal/transient"
)

func main() {
	// A hard-switched test cell: trapezoid source, damped RC network,
	// 50 Ω measurement port.
	c := &netlist.Circuit{Title: "time-domain demo"}
	period := 5e-6
	c.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 5, Rise: 50e-9, Fall: 50e-9, Width: 2e-6, Period: period,
	}})
	c.AddR("R1", "sw", "mid", 220)
	c.AddC("C1", "mid", "0", 100e-9)
	c.AddR("R2", "mid", "meas", 100)
	c.AddR("Rm", "meas", "0", 50)

	// Simulate from the DC operating point: 100 switching periods.
	dt := 5e-9
	res, err := transient.Simulate(c, transient.Options{
		Step: dt, End: 100 * period, InitDC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	wave := res.Node("meas")
	fmt.Printf("simulated %d time steps (%d switching periods)\n",
		len(wave), 100)

	// The receiver, tuned across the first harmonics. Time constants are
	// shortened to fit the simulated duration (a real QP detector needs
	// hundreds of milliseconds of dwell per frequency).
	band := emi.ReceiverBand{
		Name: "demo", RBW: 20e3,
		ChargeTC: 2 * period, DischargeTC: 40 * period, MeterTC: 20 * period,
	}
	fmt.Println("\nharmonic   f_kHz      PK        QP       AVG   [dBµV]")
	tail := wave[len(wave)/3:]
	for k := 1; k <= 5; k++ {
		f := float64(k) / period
		var reading [3]float64
		for i, det := range []emi.Detector{emi.Peak, emi.QuasiPeak, emi.Average} {
			db, err := emi.MeasureWaveform(tail, dt, f, band, det)
			if err != nil {
				log.Fatal(err)
			}
			reading[i] = db
		}
		fmt.Printf("   h%-2d   %7.0f   %6.1f    %6.1f    %6.1f\n",
			k, f/1e3, reading[0], reading[1], reading[2])
	}
	fmt.Println("\nFor the steady periodic signal the three detectors agree — the")
	fmt.Println("CISPR CW property. On pulsed interference they separate: see the")
	fmt.Println("detector-ordering test in internal/emi.")
}
