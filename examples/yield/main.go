// Monte-Carlo tolerance yield: the paper promises "a statement on
// achievable performance with the given components" — this example makes
// that statement statistical. Component values scatter within their
// tolerances and the extracted coupling factors within the PEEC model
// error; each sample is predicted against the CISPR 25 limits.
//
//	go run ./examples/yield
package main

import (
	"fmt"
	"log"

	"repro/internal/buck"
	"repro/internal/core"
)

func main() {
	// Unfavourable layout.
	unfav := buck.Project()
	if err := buck.Unfavorable(unfav); err != nil {
		log.Fatal(err)
	}
	if _, err := buck.DeriveAllRules(unfav, 0.01, 3, 0.01); err != nil {
		log.Fatal(err)
	}

	// Optimised layout with the same rules.
	opt := buck.Project()
	opt.Design.Rules = unfav.Design.Rules
	if _, err := buck.Optimize(opt); err != nil {
		log.Fatal(err)
	}

	mc := core.ToleranceOptions{
		N:           80,
		Seed:        2008,
		RLCTol:      0.10, // ±10 % component values
		CouplingTol: 0.20, // ±20 % extracted coupling factors
		MaxFreq:     30e6,
	}
	fmt.Printf("Monte-Carlo: %d samples, ±%.0f%% RLC, ±%.0f%% coupling\n\n",
		mc.N, mc.RLCTol*100, mc.CouplingTol*100)

	for _, v := range []struct {
		name string
		p    *core.Project
	}{{"unfavourable placement", unfav}, {"optimized placement", opt}} {
		y, err := v.p.ToleranceYield(mc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s yield %5.1f%%   worst margin p10 %+6.1f dB, median %+6.1f dB, p90 %+6.1f dB\n",
			v.name, y.Yield()*100,
			y.Percentile(0.1), y.Percentile(0.5), y.Percentile(0.9))
	}
	fmt.Println("\nThe placement decides the pass statistics before a single component")
	fmt.Println("tolerance is tightened — the paper's cost argument in numbers.")
}
