// The paper's full case study: an automotive buck converter with input and
// output EMI filters, measured behind a CISPR 25 LISN.
//
// The example walks the complete methodical EMI design flow:
//
//  1. baseline ("trial and error") placement → conducted noise over limits,
//
//  2. prediction with/without couplings vs a virtual measurement,
//
//  3. sensitivity analysis → relevant coupling pairs,
//
//  4. PEMD rule derivation,
//
//  5. automatic rule-honouring placement → emissions under the limits.
//
//     go run ./examples/buckconverter
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/buck"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/emi"
	"repro/internal/render"
)

func main() {
	p := buck.Project()
	fmt.Printf("design %q: %d components, %d nets, 3 functional groups\n",
		p.Design.Name, len(p.Design.Comps), len(p.Design.Nets))

	// --- 1. Unfavourable placement (EMI-blind baseline). ---
	if err := buck.Unfavorable(p); err != nil {
		log.Fatal(err)
	}
	sUnfav, err := p.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 1 — unfavourable placement: worst margin %.1f dB, %d CISPR 25 violations\n",
		sUnfav.WorstMargin(), len(sUnfav.Violations()))

	// --- 2. Why prediction must include couplings (Figures 12–14). ---
	meas, err := p.VirtualMeasurement(emi.BandStop, 2, 2008)
	if err != nil {
		log.Fatal(err)
	}
	sNo, err := p.Predict(core.PredictOptions{WithCouplings: false})
	if err != nil {
		log.Fatal(err)
	}
	cNo := emi.Compare(meas, sNo)
	cYes := emi.Compare(meas, sUnfav)
	fmt.Printf("prediction neglecting couplings: off by up to %.1f dB from measurement\n", cNo.MaxAbsDelta)
	fmt.Printf("prediction including couplings:  within %.1f dB — usable for design\n", cYes.MaxAbsDelta)

	// --- 3+4. Sensitivity analysis and rule derivation. ---
	rank, err := p.RankCouplings(0.01, 30e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsensitivity ranking (top 5 of", len(rank), "pairs):")
	for i, pr := range rank {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-4s / %-4s  +%.1f dB\n", pr.LA, pr.LB, pr.DeltaDB)
	}
	relevant := rank.Relevant(3).Pairs()
	if _, err := p.DeriveRules(relevant, 0.01); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d minimum-distance rules for the %d relevant pairs:\n",
		p.Design.RuleCount(), len(relevant))
	for _, r := range p.Design.Rules.Rules {
		fmt.Printf("  PEMD %-4s %-4s %5.1f mm\n", r.RefA, r.RefB, r.PEMD*1e3)
	}

	// The unfavourable layout seen through the new rules: red circles.
	rep := p.Verify()
	fmt.Printf("\nFigure 15 — original layout: %d of %d EMD rules violated\n",
		len(rep.ByKind(drc.KindEMD)), p.Design.RuleCount())

	// --- 5. Automatic placement with the rules. ---
	res, err := buck.Optimize(p)
	if err != nil {
		log.Fatal(err)
	}
	rep = p.Verify()
	fmt.Printf("Figure 16/17 — automatic placement in %v, DRC green: %v\n",
		res.Elapsed, rep.Green())

	sOpt, err := p.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		log.Fatal(err)
	}
	maxRed := 0.0
	for i := range sUnfav.DB {
		if d := sUnfav.DB[i] - sOpt.DB[i]; d > maxRed {
			maxRed = d
		}
	}
	fmt.Printf("\nFigure 2 — optimised placement: worst margin %+.1f dB, %d violations,\n",
		sOpt.WorstMargin(), len(sOpt.Violations()))
	fmt.Printf("           emissions reduced by up to %.1f dB with the SAME components.\n", maxRed)

	// Render the result if a writable directory is available.
	if f, err := os.Create("buck_optimized.svg"); err == nil {
		if err := render.SVG(f, p.Design, rep, render.Options{ShowRules: true, ShowAxes: true}); err == nil {
			fmt.Println("\nwrote buck_optimized.svg")
		}
		f.Close()
	}
}
