// Two-board placement: the paper's tool supports "1 or 2 rigid connected
// boards" with an optional partitioning step that assigns circuit
// partitions to board sides.
//
// This example builds a mixed filter/control design, lets the automatic
// method partition it across two boards (functional groups travel as one
// unit, preplaced parts anchor their side), and shows the bonus effect:
// EMD rules between components on different boards dissolve.
//
//	go run ./examples/twoboard
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/rules"
)

func main() {
	d := &layout.Design{
		Name:      "two-board converter",
		Boards:    2,
		Clearance: 0.8e-3,
		Areas: []layout.Area{
			{Name: "powerboard", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.07, 0.05))},
			{Name: "ctrlboard", Board: 1, Poly: geom.RectPolygon(geom.R(0, 0, 0.07, 0.05))},
		},
		Rules: rules.NewSet(nil),
	}

	// Power-side magnetics in one functional group …
	for _, ref := range []string{"CF1", "CF2", "LP1"} {
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: 0.016, L: 0.008, H: 0.013,
			Axis: geom.V3(0, 1, 0), Group: "power-filter",
		})
	}
	// … control-side parts in another, plus loose glue parts.
	for _, ref := range []string{"U1", "U2"} {
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: 0.009, L: 0.009, H: 0.002, Group: "control",
		})
	}
	for _, ref := range []string{"R1", "R2", "CX9"} {
		d.Comps = append(d.Comps, &layout.Component{Ref: ref, W: 0.004, L: 0.003, H: 0.002})
	}
	// The supply connector is preplaced on the power board.
	conn := &layout.Component{
		Ref: "J1", W: 0.012, L: 0.02, H: 0.011,
		Preplaced: true, Placed: true, Center: geom.V2(0.008, 0.025), Board: 0,
	}
	d.Comps = append(d.Comps, conn)

	// Dense power nets, one thin cross-domain net.
	d.Nets = []layout.Net{
		{Name: "vin", Refs: []string{"J1", "CF1", "LP1"}},
		{Name: "vdd", Refs: []string{"LP1", "CF2"}},
		{Name: "ctrl", Refs: []string{"U1", "U2", "R1", "R2"}},
		{Name: "fb", Refs: []string{"U1", "CF2"}}, // crosses the boards
		{Name: "aux", Refs: []string{"R1", "CX9"}},
	}
	// EMD rules among the magnetics, including one to a control-side part
	// that partitioning can dissolve.
	d.Rules.Add(rules.Rule{RefA: "CF1", RefB: "CF2", PEMD: 0.022})
	d.Rules.Add(rules.Rule{RefA: "CF1", RefB: "LP1", PEMD: 0.018})
	d.Rules.Add(rules.Rule{RefA: "CF2", RefB: "LP1", PEMD: 0.018})

	res, err := place.AutoPlace(d, place.Options{Partition: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d components on 2 boards in %v\n", res.Placed, res.Elapsed)
	fmt.Printf("nets crossing the boards after partitioning: %d\n", res.CutNets)
	for b := 0; b < 2; b++ {
		fmt.Printf("\nboard %d:\n", b)
		for _, c := range d.Comps {
			if c.Board == b {
				marker := " "
				if c.Preplaced {
					marker = "*"
				}
				fmt.Printf("  %s%-4s (%4.0f, %4.0f) mm  %s\n",
					marker, c.Ref, c.Center.X*1e3, c.Center.Y*1e3, c.Group)
			}
		}
	}
	rep := place.Verify(d)
	fmt.Printf("\nDRC green: %v (%d checks)\n", rep.Green(), rep.Checks)
	if !rep.Green() {
		fmt.Print(rep)
	}
	// Group integrity across the partition.
	g := d.Groups()
	for _, name := range d.GroupNames() {
		b := g[name][0].Board
		whole := true
		for _, m := range g[name] {
			if m.Board != b {
				whole = false
			}
		}
		fmt.Printf("group %-13s on board %d, intact: %v\n", name, b, whole)
	}
}
