// Interactive placement adviser (the paper's "online design rule checks
// visualize design rule violations immediately").
//
// The example drives the adviser API the way a GUI would: it moves a
// capacitor stepwise towards another one, watching the EMD rule flip from
// green to red, then cures the violation by rotating the part 90° — the
// paper's Figure 6 trick — and finally compacts the layout while the
// online check guards every move.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/rules"
)

func main() {
	d := &layout.Design{
		Name:      "advisor demo",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.08, 0.05))},
		},
		Rules: rules.NewSet(nil),
	}
	for _, ref := range []string{"C1", "C2"} {
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: 18e-3, L: 8e-3, H: 14e-3, Axis: geom.V3(0, 1, 0),
		})
	}
	d.Rules.Add(rules.Rule{RefA: "C1", RefB: "C2", PEMD: 24e-3})

	c1 := d.Find("C1")
	c1.Placed, c1.Center = true, geom.V2(0.02, 0.025)
	c2 := d.Find("C2")
	c2.Placed, c2.Center = true, geom.V2(0.06, 0.025)

	adv := place.NewAdviser(d)
	fmt.Println("rule: PEMD(C1,C2) = 24 mm at parallel axes")
	fmt.Println("\ndragging C2 towards C1:")
	for _, mm := range []float64{55, 48, 44, 42, 36} {
		rep, err := adv.Move("C2", geom.V2(mm*1e-3, 0.025), 0)
		if err != nil {
			log.Fatal(err)
		}
		status := "GREEN"
		if !rep.Green() {
			status = "RED  "
		}
		p := rep.Pairs[0]
		fmt.Printf("  C2 at x=%2.0f mm → %s (need %.1f mm, have %.1f mm)\n",
			mm, status, p.Required*1e3, p.Actual*1e3)
	}

	fmt.Println("\nthe online check is red — rotate C2 by 90° instead of moving away:")
	rep, err := adv.Move("C2", geom.V2(0.036, 0.025), geom.Rad(90))
	if err != nil {
		log.Fatal(err)
	}
	p := rep.Pairs[0]
	fmt.Printf("  C2 rotated 90° at x=36 mm → green: %v (EMD need %.1f mm, have %.1f mm)\n",
		rep.Green(), p.Required*1e3, p.Actual*1e3)

	fmt.Println("\ncompacting: how close can C2 go with orthogonal axes?")
	for _, mm := range []float64{35, 34, 33} {
		rep, err := adv.Try("C2", geom.V2(mm*1e-3, 0.025), geom.Rad(90))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "clearance violated"
		if rep.Green() {
			verdict = "legal"
		}
		fmt.Printf("  try x=%2.0f mm → %s\n", mm, verdict)
		if rep.Green() {
			if _, err := adv.Move("C2", geom.V2(mm*1e-3, 0.025), geom.Rad(90)); err != nil {
				log.Fatal(err)
			}
		}
	}
	final := adv.Report()
	bb := adv.BoundingBox(0)
	fmt.Printf("\nfinal layout green: %v, bounding box %.0f × %.0f mm — EMC-clean and compact.\n",
		final.Green(), bb.W()*1e3, bb.H()*1e3)
}
