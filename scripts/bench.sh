#!/usr/bin/env bash
# Runs the repo's tracked performance benchmarks and emits a JSON report.
#
#   scripts/bench.sh [out.json] [tracing_out.json]
#
# The report maps each benchmark to {iterations, ns_per_op, bytes_per_op,
# allocs_per_op}; BENCH_pr3.json in the repo root pins the before/after of
# the stamp-plan/factorization-reuse PR and BENCH_pr4.json the incremental
# session-edit numbers, in the same per-benchmark schema.
#
# The second report compares each benchmark against its *Traced twin —
# the same workload with a span collection attached to the context — and
# records the spans-disabled vs spans-enabled delta. BENCH_pr5.json in the
# repo root pins that tracing overhead for the sensitivity ranking and the
# incremental session edit. BENCH_pr7.json pins the explorer's
# per-generation and per-Monte-Carlo-batch throughput.
#
# Compare mode prints per-benchmark ns/op deltas between two reports and
# exits non-zero when any overlapping benchmark regressed by more than
# 20 %:
#
#   scripts/bench.sh --compare old.json new.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--compare" ]]; then
    if [[ $# -ne 3 ]]; then
        echo "usage: scripts/bench.sh --compare old.json new.json" >&2
        exit 2
    fi
    extract_ns() {
        # Newline-agnostic: entries may be pretty-printed across lines.
        tr '\n' ' ' < "$1" | awk '
        {
            line = $0
            while (match(line, /"Benchmark[^"]*": *\{[^}]*\}/)) {
                entry = substr(line, RSTART, RLENGTH)
                line = substr(line, RSTART + RLENGTH)
                if (match(entry, /"Benchmark[^"]*"/))
                    name = substr(entry, RSTART + 1, RLENGTH - 2)
                else
                    continue
                if (match(entry, /"ns_per_op": *[0-9.eE+-]+/)) {
                    ns = substr(entry, RSTART, RLENGTH)
                    sub(/.*: */, "", ns)
                    print name, ns
                }
            }
        }' | sort
    }
    join <(extract_ns "$2") <(extract_ns "$3") | awk '
    BEGIN {
        printf "%-44s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        fail = 0
    }
    {
        o = $2 + 0; nw = $3 + 0
        pct = (o > 0) ? 100 * (nw - o) / o : 0
        mark = ""
        if (pct > 20) { mark = "  REGRESSION"; fail = 1 }
        printf "%-44s %14.0f %14.0f %+8.1f%%%s\n", $1, o, nw, pct, mark
        n++
    }
    END {
        if (n == 0) { print "no overlapping benchmarks between the two reports"; exit 2 }
        exit fail
    }'
    exit $?
fi

OUT="${1:-bench_report.json}"
TRACING_OUT="${2:-bench_tracing.json}"
PATTERN='BenchmarkMNASolve|BenchmarkExtractCouplings|BenchmarkFig13NoCoupling|BenchmarkFig14WithCoupling|BenchmarkTransientBuckPeriod|BenchmarkSensitivityRank|BenchmarkSessionEdit|BenchmarkExploreGeneration|BenchmarkYieldBatch'

RAW="$(go test -bench "$PATTERN" -benchmem -run=NONE -count=1 .)"
echo "$RAW"

echo "$RAW" | awk -v out="$OUT" -v tout="$TRACING_OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix if present
    iters[name] = $2
    # Parse by unit token: custom b.ReportMetric columns shift positions.
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns[name] = $i
        else if ($(i+1) == "B/op") bytes[name] = $i
        else if ($(i+1) == "allocs/op") allocs[name] = $i
    }
    order[n++] = name
}
END {
    printf "{\n" > out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, iters[name], ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "") > out
    }
    printf "}\n" > out

    # Tracing overhead: pair every XTraced benchmark with its untraced X.
    m = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        base = name
        if (sub(/Traced$/, "", base) && (base in ns)) {
            pairs[m++] = base
        }
    }
    printf "{\n" > tout
    for (i = 0; i < m; i++) {
        base = pairs[i]
        traced = base "Traced"
        pct = (ns[base] > 0) ? 100 * (ns[traced] - ns[base]) / ns[base] : 0
        printf "  \"%s\": {\n", base > tout
        printf "    \"spans_disabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
            ns[base], bytes[base], allocs[base] > tout
        printf "    \"spans_enabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
            ns[traced], bytes[traced], allocs[traced] > tout
        printf "    \"ns_overhead_pct\": %.2f\n", pct > tout
        printf "  }%s\n", (i < m-1 ? "," : "") > tout
    }
    printf "}\n" > tout
}
'
echo "wrote $OUT and $TRACING_OUT"
