#!/usr/bin/env bash
# Runs the repo's tracked performance benchmarks and emits a JSON report.
#
#   scripts/bench.sh [out.json]
#
# The report maps each benchmark to {iterations, ns_per_op, bytes_per_op,
# allocs_per_op}; BENCH_pr3.json in the repo root pins the before/after of
# the stamp-plan/factorization-reuse PR and BENCH_pr4.json the incremental
# session-edit numbers, in the same per-benchmark schema.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-bench_report.json}"
PATTERN='BenchmarkMNASolve|BenchmarkFig13NoCoupling|BenchmarkFig14WithCoupling|BenchmarkTransientBuckPeriod|BenchmarkSensitivityRank|BenchmarkSessionEdit'

RAW="$(go test -bench "$PATTERN" -benchmem -run=NONE -count=1 .)"
echo "$RAW"

echo "$RAW" | awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix if present
    iters[name] = $2
    ns[name] = $3
    bytes[name] = $5
    allocs[name] = $7
    order[n++] = name
}
END {
    printf "{\n" > out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, iters[name], ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "") > out
    }
    printf "}\n" > out
}
'
echo "wrote $OUT"
