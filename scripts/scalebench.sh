#!/usr/bin/env bash
# Produces the sparse/hierarchical scaling curve: emiscale runs over a
# range of board sizes in two configurations — the legacy exact/dense
# baseline and the accelerated hierarchical/sparse path — and the records
# are collected into one JSON array (BENCH_pr8.json in the repo root pins
# the curve; the baseline stops at 2000 segments where it is already an
# order of magnitude behind).
#
#   scripts/scalebench.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr8.json}"
BIN="$(mktemp -d)/emiscale"
LINES="$(mktemp)"
trap 'rm -rf "$(dirname "$BIN")" "$LINES"' EXIT

go build -o "$BIN" ./cmd/emiscale

for seg in 500 1000 2000; do
    echo "== $seg segments, exact/dense baseline =="
    "$BIN" -segments "$seg" -theta 0 -solver dense -json "$LINES"
    echo "== $seg segments, hierarchical/sparse =="
    "$BIN" -segments "$seg" -theta 0.3 -solver sparse -json "$LINES"
done
for seg in 5000 10000; do
    echo "== $seg segments, hierarchical/sparse =="
    "$BIN" -segments "$seg" -theta 0.3 -solver sparse -json "$LINES"
done

# Auto mode at full scale: the fill-aware heuristic keeps the
# hierarchical extraction but reverts the fill-heavy predict system to
# the dense backend, beating both forced modes end to end.
echo "== 10000 segments, hierarchical/auto =="
"$BIN" -segments 10000 -theta 0.3 -solver auto -json "$LINES"

# Wrap the JSONL records into a JSON array.
awk 'BEGIN { print "[" } { printf "%s%s\n", (NR > 1 ? "," : ""), $0 } END { print "]" }' \
    "$LINES" > "$OUT"
echo "wrote $OUT"
