// Package repro is a from-scratch Go reproduction of "A Novel Approach for
// EMI Design of Power Electronics" (Stube, Schroeder, Hoene, Lissner —
// DATE 2008): a coupled field/circuit EMI prediction flow (PEEC partial
// inductances + modified nodal analysis), a sensitivity analysis that
// prunes the couplings worth extracting, derivation of pairwise
// minimum-distance placement rules EMD = PEMD·|cos α|, and a dedicated
// constraint-driven placement tool with an interactive adviser.
//
// The root package holds the benchmark harness (one benchmark per paper
// figure plus the ablations of DESIGN.md §5); all functionality lives in
// the internal packages, the command-line tools in cmd/, and runnable
// walkthroughs in examples/. See README.md for the tour, DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-reproduction results.
package repro
